// A single filesystem layer: a flat, ordered map from normalized absolute
// paths to file metadata.  Layers are the unit of sharing in the union
// filesystem (Shared Resource Layer, §IV-C of the paper) and the unit of
// composition for Android system images.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace rattrap::fs {

enum class FileKind : std::uint8_t {
  kRegular,
  kDirectory,
  kSymlink,
  kDevice,
};

/// Per-file metadata. The simulation tracks sizes and access times, not
/// contents; workload data that needs real bytes lives in the workload
/// generators, not in the filesystem model.
struct FileNode {
  FileKind kind = FileKind::kRegular;
  std::uint64_t size = 0;            ///< bytes
  sim::SimTime mtime = 0;            ///< last modification
  sim::SimTime atime = 0;            ///< last access (drives Obs. 4)
  bool whiteout = false;             ///< union-fs deletion marker
  bool accessed = false;             ///< ever read since creation
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Inserts or replaces a regular file. Parent directories are created
  /// implicitly on lookup-by-prefix semantics (flat map), so no mkdir -p
  /// bookkeeping is required.
  void put_file(std::string_view path, std::uint64_t size,
                sim::SimTime mtime = 0);

  /// Inserts a directory entry (size 0).
  void put_dir(std::string_view path, sim::SimTime mtime = 0);

  /// Inserts a device node.
  void put_device(std::string_view path, sim::SimTime mtime = 0);

  /// Inserts a whiteout marker hiding `path` in lower layers.
  void put_whiteout(std::string_view path);

  /// Removes an entry. Returns true when something was removed.
  bool erase(std::string_view path);

  /// Looks up an exact path.
  [[nodiscard]] const FileNode* find(std::string_view path) const;
  [[nodiscard]] FileNode* find(std::string_view path);

  [[nodiscard]] bool contains(std::string_view path) const {
    return find(path) != nullptr;
  }

  /// Total bytes of non-whiteout regular files.
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Number of entries (including directories and whiteouts).
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Number of regular files.
  [[nodiscard]] std::size_t file_count() const { return file_count_; }

  /// Visits every entry in path order; return false from the visitor to
  /// stop early.
  void for_each(
      const std::function<bool(const std::string&, const FileNode&)>& visit)
      const;

  /// Visits entries under `prefix` (inclusive) in path order.
  void for_each_under(
      std::string_view prefix,
      const std::function<bool(const std::string&, const FileNode&)>& visit)
      const;

  /// Sum of sizes of entries under `prefix`.
  [[nodiscard]] std::uint64_t bytes_under(std::string_view prefix) const;

 private:
  void account_add(const FileNode& node);
  void account_remove(const FileNode& node);

  std::string name_;
  std::map<std::string, FileNode, std::less<>> entries_;
  std::uint64_t total_bytes_ = 0;
  std::size_t file_count_ = 0;
};

}  // namespace rattrap::fs
