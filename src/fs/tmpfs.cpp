#include "fs/tmpfs.hpp"

#include <algorithm>
#include <cassert>

#include "fs/path.hpp"

namespace rattrap::fs {

TmpFs::TmpFs(std::string name, std::uint64_t capacity, double bandwidth_mb_s)
    : store_(std::move(name)),
      capacity_(capacity),
      bandwidth_mb_s_(bandwidth_mb_s) {
  assert(bandwidth_mb_s > 0);
}

bool TmpFs::write(std::string_view path, std::uint64_t size, sim::SimTime now,
                  bool burn_after_reading) {
  if (faults_ != nullptr &&
      faults_->should_fire(sim::FaultKind::kTmpfsWriteFail)) {
    // Injected ENOSPC/EIO: the write fails exactly like a capacity
    // refusal, so callers exercise their spill/degradation paths.
    ++injected_write_failures_;
    return false;
  }
  const std::string key = normalize(path);
  std::uint64_t existing = 0;
  if (const FileNode* node = store_.find(key)) existing = node->size;
  // Replacing a file frees its old bytes first.
  if (used_bytes() - existing + size > capacity_) return false;
  store_.put_file(key, size, now);
  if (burn_after_reading) {
    burn_list_.insert(key);
  } else {
    burn_list_.erase(key);
  }
  written_ += size;
  peak_ = std::max(peak_, used_bytes());
  return true;
}

std::int64_t TmpFs::read(std::string_view path, sim::SimTime now) {
  const std::string key = normalize(path);
  FileNode* node = store_.find(key);
  if (node == nullptr) return -1;
  node->atime = now;
  node->accessed = true;
  const auto size = static_cast<std::int64_t>(node->size);
  read_ += node->size;
  if (burn_list_.erase(key) > 0) {
    store_.erase(key);  // burn after reading
  }
  return size;
}

bool TmpFs::remove(std::string_view path) {
  const std::string key = normalize(path);
  burn_list_.erase(key);
  return store_.erase(key);
}

sim::SimDuration TmpFs::transfer_time(std::uint64_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) / (bandwidth_mb_s_ * 1024.0 * 1024.0);
  return sim::from_seconds(seconds);
}

}  // namespace rattrap::fs
