#include "fs/layer.hpp"

#include "fs/path.hpp"

namespace rattrap::fs {

void Layer::account_add(const FileNode& node) {
  if (node.kind == FileKind::kRegular && !node.whiteout) {
    total_bytes_ += node.size;
    ++file_count_;
  }
}

void Layer::account_remove(const FileNode& node) {
  if (node.kind == FileKind::kRegular && !node.whiteout) {
    total_bytes_ -= node.size;
    --file_count_;
  }
}

void Layer::put_file(std::string_view path, std::uint64_t size,
                     sim::SimTime mtime) {
  const std::string key = normalize(path);
  FileNode node;
  node.kind = FileKind::kRegular;
  node.size = size;
  node.mtime = mtime;
  auto old = entries_.find(key);
  if (old != entries_.end()) {
    account_remove(old->second);
    old->second = node;
  } else {
    entries_.emplace(key, node);
  }
  account_add(node);
}

void Layer::put_dir(std::string_view path, sim::SimTime mtime) {
  const std::string key = normalize(path);
  FileNode node;
  node.kind = FileKind::kDirectory;
  node.mtime = mtime;
  auto old = entries_.find(key);
  if (old != entries_.end()) {
    account_remove(old->second);
    old->second = node;
  } else {
    entries_.emplace(key, node);
  }
}

void Layer::put_device(std::string_view path, sim::SimTime mtime) {
  const std::string key = normalize(path);
  FileNode node;
  node.kind = FileKind::kDevice;
  node.mtime = mtime;
  auto old = entries_.find(key);
  if (old != entries_.end()) {
    account_remove(old->second);
    old->second = node;
  } else {
    entries_.emplace(key, node);
  }
}

void Layer::put_whiteout(std::string_view path) {
  const std::string key = normalize(path);
  FileNode node;
  node.whiteout = true;
  auto old = entries_.find(key);
  if (old != entries_.end()) {
    account_remove(old->second);
    old->second = node;
  } else {
    entries_.emplace(key, node);
  }
}

bool Layer::erase(std::string_view path) {
  const auto it = entries_.find(normalize(path));
  if (it == entries_.end()) return false;
  account_remove(it->second);
  entries_.erase(it);
  return true;
}

const FileNode* Layer::find(std::string_view path) const {
  const auto it = entries_.find(normalize(path));
  return it == entries_.end() ? nullptr : &it->second;
}

FileNode* Layer::find(std::string_view path) {
  const auto it = entries_.find(normalize(path));
  return it == entries_.end() ? nullptr : &it->second;
}

void Layer::for_each(
    const std::function<bool(const std::string&, const FileNode&)>& visit)
    const {
  for (const auto& [path, node] : entries_) {
    if (!visit(path, node)) return;
  }
}

void Layer::for_each_under(
    std::string_view prefix,
    const std::function<bool(const std::string&, const FileNode&)>& visit)
    const {
  const std::string pre = normalize(prefix);
  for (auto it = entries_.lower_bound(pre); it != entries_.end(); ++it) {
    if (!is_under(it->first, pre)) {
      // Entries are path-ordered; once we pass the subtree we may still see
      // siblings that sort after (e.g. "/ab" after "/a/z" stops at "/ab").
      if (it->first.compare(0, pre.size(), pre) > 0) break;
      continue;
    }
    if (!visit(it->first, it->second)) return;
  }
}

std::uint64_t Layer::bytes_under(std::string_view prefix) const {
  std::uint64_t sum = 0;
  for_each_under(prefix, [&](const std::string&, const FileNode& node) {
    if (node.kind == FileKind::kRegular && !node.whiteout) sum += node.size;
    return true;
  });
  return sum;
}

}  // namespace rattrap::fs
