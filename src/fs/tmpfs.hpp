// In-memory filesystem (tmpfs) used by the Sharing Offloading I/O layer.
//
// The paper serves all offloading I/O (transferred files, parameters) out
// of one shared tmpfs mount: reads and writes hit memory bandwidth instead
// of the HDD, and "burn after reading" semantics drop one-shot files right
// after consumption to bound the memory footprint (§IV-C).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "fs/layer.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace rattrap::fs {

class TmpFs {
 public:
  /// `capacity` bytes of backing memory; writes beyond it fail.
  /// `bandwidth_mb_s` models the memcpy rate seen by file operations.
  TmpFs(std::string name, std::uint64_t capacity, double bandwidth_mb_s);

  [[nodiscard]] const std::string& name() const { return store_.name(); }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used_bytes() const { return store_.total_bytes(); }
  [[nodiscard]] std::uint64_t free_bytes() const {
    return capacity_ - used_bytes();
  }
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_; }
  [[nodiscard]] std::size_t file_count() const { return store_.file_count(); }

  /// Creates or replaces a file. `burn_after_reading` marks it for removal
  /// on first read. Returns false (no change) when capacity would be
  /// exceeded.
  bool write(std::string_view path, std::uint64_t size, sim::SimTime now,
             bool burn_after_reading = false);

  /// Reads a file; returns its size or -1 when absent. Burn-after-reading
  /// files are unlinked by this call.
  std::int64_t read(std::string_view path, sim::SimTime now);

  [[nodiscard]] bool exists(std::string_view path) const {
    return store_.contains(path);
  }

  bool remove(std::string_view path);

  /// Simulated duration of moving `bytes` through memory at the configured
  /// bandwidth.
  [[nodiscard]] sim::SimDuration transfer_time(std::uint64_t bytes) const;

  /// Total bytes ever written / read through this mount.
  [[nodiscard]] std::uint64_t bytes_written() const { return written_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return read_; }

  /// Attaches a fault injector: writes consult kTmpfsWriteFail and fail
  /// (as ENOSPC does) when it fires. nullptr detaches.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  /// Writes refused by an injected fault (capacity refusals not counted).
  [[nodiscard]] std::uint64_t injected_write_failures() const {
    return injected_write_failures_;
  }

 private:
  Layer store_;
  std::set<std::string, std::less<>> burn_list_;
  std::uint64_t capacity_;
  double bandwidth_mb_s_;
  std::uint64_t peak_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t read_ = 0;
  sim::FaultInjector* faults_ = nullptr;
  std::uint64_t injected_write_failures_ = 0;
};

}  // namespace rattrap::fs
