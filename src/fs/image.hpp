// System-image construction.
//
// An ImageBuilder turns a component inventory (N apps totalling X bytes
// under /system/app, M shared libraries under /system/lib, ...) into a
// concrete filesystem Layer with individually sized files.  The android
// module defines the stock Android 4.4 inventory the paper profiles in
// §IV-B3 (20 built-in apps, 197 .so, 4372 .ko, 396 firmware .bin) and the
// offloading-only customized subset.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fs/layer.hpp"
#include "sim/random.hpp"

namespace rattrap::fs {

/// A homogeneous group of files in one directory.
struct FileGroup {
  std::string directory;     ///< e.g. "/system/lib"
  std::string stem;          ///< file-name stem, e.g. "lib"
  std::string extension;     ///< e.g. ".so"
  std::size_t count = 0;     ///< number of files
  std::uint64_t total_bytes = 0;  ///< group volume, split across files
  bool essential = false;    ///< offloaded code actually touches this group
};

class ImageBuilder {
 public:
  ImageBuilder& add_group(FileGroup group);

  /// Declared total across all groups.
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Declared total across essential groups only.
  [[nodiscard]] std::uint64_t essential_bytes() const;

  [[nodiscard]] const std::vector<FileGroup>& groups() const {
    return groups_;
  }

  /// Materializes the image as a Layer named `name`.  File sizes within a
  /// group follow a lognormal weight profile normalized to the group total
  /// (deterministic given `rng`).  Per-file `essential` tagging is encoded
  /// in the path so profilers can recognize it.
  [[nodiscard]] std::shared_ptr<Layer> build(const std::string& name,
                                             sim::Rng rng) const;

  /// Paths of all files belonging to essential groups in a built image.
  /// (Recomputed from the group specs; order matches build().)
  [[nodiscard]] std::vector<std::string> essential_paths() const;

 private:
  std::vector<FileGroup> groups_;

  static std::string file_path(const FileGroup& group, std::size_t index);
};

}  // namespace rattrap::fs
