#include "fs/image.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "fs/path.hpp"

namespace rattrap::fs {

ImageBuilder& ImageBuilder::add_group(FileGroup group) {
  assert(!group.directory.empty());
  groups_.push_back(std::move(group));
  return *this;
}

std::uint64_t ImageBuilder::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& g : groups_) sum += g.total_bytes;
  return sum;
}

std::uint64_t ImageBuilder::essential_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& g : groups_) {
    if (g.essential) sum += g.total_bytes;
  }
  return sum;
}

std::string ImageBuilder::file_path(const FileGroup& group,
                                    std::size_t index) {
  return join(group.directory,
              group.stem + std::to_string(index) + group.extension);
}

std::shared_ptr<Layer> ImageBuilder::build(const std::string& name,
                                           sim::Rng rng) const {
  auto layer = std::make_shared<Layer>(name);
  for (const auto& group : groups_) {
    if (group.count == 0) continue;
    layer->put_dir(group.directory);
    // Lognormal weights normalized so the group hits its declared volume
    // exactly (up to integer rounding, corrected on the last file).
    std::vector<double> weights(group.count);
    sim::Rng group_rng = rng.fork(group.directory + group.extension);
    double weight_sum = 0.0;
    for (auto& w : weights) {
      w = group_rng.lognormal(0.0, 0.75);
      weight_sum += w;
    }
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < group.count; ++i) {
      std::uint64_t size;
      if (i + 1 == group.count) {
        size = group.total_bytes - assigned;
      } else {
        size = static_cast<std::uint64_t>(
            static_cast<double>(group.total_bytes) * weights[i] / weight_sum);
        if (assigned + size > group.total_bytes) {
          size = group.total_bytes - assigned;
        }
      }
      assigned += size;
      layer->put_file(file_path(group, i), size);
    }
  }
  return layer;
}

std::vector<std::string> ImageBuilder::essential_paths() const {
  std::vector<std::string> out;
  for (const auto& group : groups_) {
    if (!group.essential) continue;
    for (std::size_t i = 0; i < group.count; ++i) {
      out.push_back(file_path(group, i));
    }
  }
  return out;
}

}  // namespace rattrap::fs
