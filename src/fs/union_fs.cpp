#include "fs/union_fs.hpp"

#include <cassert>

#include "fs/path.hpp"

namespace rattrap::fs {

UnionFs::UnionFs(std::string name,
                 std::vector<std::shared_ptr<const Layer>> lower)
    : top_(std::move(name)), lower_(std::move(lower)) {
  for (const auto& layer : lower_) {
    assert(layer && "null lower layer");
  }
}

UnionHit UnionFs::lookup(std::string_view path) const {
  const std::string key = normalize(path);
  if (const FileNode* node = top_.find(key)) {
    if (node->whiteout) return {};
    return {node, 0};
  }
  // Lower layers resolve top-down: the last layer in the vector is the
  // highest of the lower stack.
  for (std::size_t i = lower_.size(); i-- > 0;) {
    if (const FileNode* node = lower_[i]->find(key)) {
      if (node->whiteout) return {};
      return {node, lower_.size() - i};
    }
  }
  return {};
}

const FileNode* UnionFs::lower_lookup(std::string_view path) const {
  const std::string key = normalize(path);
  for (std::size_t i = lower_.size(); i-- > 0;) {
    if (const FileNode* node = lower_[i]->find(key)) {
      return node->whiteout ? nullptr : node;
    }
  }
  return nullptr;
}

std::int64_t UnionFs::read(std::string_view path, sim::SimTime now) {
  const std::string key = normalize(path);
  if (FileNode* node = top_.find(key)) {
    if (node->whiteout) return -1;
    node->atime = now;
    node->accessed = true;
    return static_cast<std::int64_t>(node->size);
  }
  if (const FileNode* node = lower_lookup(key)) {
    lower_reads_.insert(key);
    return static_cast<std::int64_t>(node->size);
  }
  return -1;
}

void UnionFs::write(std::string_view path, std::uint64_t size,
                    sim::SimTime now) {
  const std::string key = normalize(path);
  if (const FileNode* existing = top_.find(key);
      existing != nullptr && !existing->whiteout) {
    // Truncate-to-size semantics: a write always sets the new size.
    top_.put_file(key, size, now);
    return;
  }
  if (const FileNode* below = lower_lookup(key)) {
    // COW: materialize the lower file's bytes into the top layer first.
    cow_bytes_ += below->size;
  }
  top_.put_file(key, size, now);
}

void UnionFs::append(std::string_view path, std::uint64_t delta,
                     sim::SimTime now) {
  const std::string key = normalize(path);
  if (FileNode* node = top_.find(key); node != nullptr && !node->whiteout) {
    top_.put_file(key, node->size + delta, now);
    return;
  }
  std::uint64_t base = 0;
  if (const FileNode* below = lower_lookup(key)) {
    cow_bytes_ += below->size;
    base = below->size;
  }
  top_.put_file(key, base + delta, now);
}

bool UnionFs::unlink(std::string_view path) {
  const std::string key = normalize(path);
  const FileNode* in_top = top_.find(key);
  const bool top_visible = in_top != nullptr && !in_top->whiteout;
  const bool below = lower_lookup(key) != nullptr;
  if (!top_visible && (in_top != nullptr || !below)) {
    // Already whiteouted, or absent everywhere.
    return false;
  }
  if (top_visible) top_.erase(key);
  if (below) top_.put_whiteout(key);
  return top_visible || below;
}

std::uint64_t UnionFs::purge_top_layer() {
  const std::uint64_t freed = top_.total_bytes();
  std::vector<std::string> paths;
  top_.for_each([&](const std::string& path, const FileNode&) {
    paths.push_back(path);
    return true;
  });
  for (const std::string& path : paths) top_.erase(path);
  return freed;
}

std::uint64_t UnionFs::visible_bytes() const {
  std::uint64_t sum = 0;
  for_each_visible([&](const std::string&, const FileNode& node) {
    if (node.kind == FileKind::kRegular) sum += node.size;
    return true;
  });
  return sum;
}

std::size_t UnionFs::visible_files() const {
  std::size_t n = 0;
  for_each_visible([&](const std::string&, const FileNode& node) {
    if (node.kind == FileKind::kRegular) ++n;
    return true;
  });
  return n;
}

void UnionFs::for_each_visible(
    const std::function<bool(const std::string&, const FileNode&)>& visit)
    const {
  // Merge all layers path-ordered; the topmost provider of a path wins.
  // Simple approach: gather winner per path into an ordered map view by
  // iterating layers bottom-up so later (higher) layers overwrite.
  std::map<std::string, const FileNode*, std::less<>> merged;
  for (const auto& layer : lower_) {
    layer->for_each([&](const std::string& path, const FileNode& node) {
      merged[path] = &node;
      return true;
    });
  }
  top_.for_each([&](const std::string& path, const FileNode& node) {
    merged[path] = &node;
    return true;
  });
  for (const auto& [path, node] : merged) {
    if (node->whiteout) continue;
    if (!visit(path, *node)) return;
  }
}

std::vector<std::string> UnionFs::readdir(std::string_view directory) const {
  const std::string dir = normalize(directory);
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  std::set<std::string> names;
  for_each_visible([&](const std::string& path, const FileNode&) {
    if (path.size() <= prefix.size() ||
        path.compare(0, prefix.size(), prefix) != 0) {
      return true;
    }
    const std::string rest = path.substr(prefix.size());
    const auto slash = rest.find('/');
    names.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
    return true;
  });
  return {names.begin(), names.end()};
}

double UnionFs::never_accessed_fraction() const {
  std::size_t total = 0;
  std::size_t untouched = 0;
  for_each_visible([&](const std::string& path, const FileNode& node) {
    if (node.kind != FileKind::kRegular) return true;
    ++total;
    const bool read_through_top = node.accessed;
    const bool read_through_lower = lower_reads_.contains(path);
    if (!read_through_top && !read_through_lower) ++untouched;
    return true;
  });
  return total == 0 ? 0.0
                    : static_cast<double>(untouched) /
                          static_cast<double>(total);
}

std::uint64_t UnionFs::never_accessed_bytes() const {
  std::uint64_t bytes = 0;
  for_each_visible([&](const std::string& path, const FileNode& node) {
    if (node.kind != FileKind::kRegular) return true;
    if (!node.accessed && !lower_reads_.contains(path)) bytes += node.size;
    return true;
  });
  return bytes;
}

}  // namespace rattrap::fs
