// Rotational-disk model with a single service arm and FIFO queue.
//
// The evaluation machines in the paper use a 300 GB HDD; VM-based
// platforms additionally pay an I/O virtualization penalty on top of this
// device model (applied by the VM layer, not here).  The Monitor reads the
// per-second I/O TimeSeries to reproduce the Fig. 2 server-load timelines.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rattrap::fs {

struct DiskConfig {
  double sequential_mb_s = 120.0;  ///< sustained sequential throughput
  double avg_seek_ms = 8.5;        ///< average seek time
  double rotational_ms = 4.17;     ///< half-rotation @7200 rpm
  /// Sequential-run detection is out of scope; callers tag requests.
};

enum class IoKind : std::uint8_t { kRead, kWrite };

class DiskModel {
 public:
  DiskModel(sim::Simulator& simulator, DiskConfig config = {});

  /// Service time of one request, excluding queueing.
  [[nodiscard]] sim::SimDuration service_time(std::uint64_t bytes,
                                              bool sequential) const;

  /// Enqueues a request; `done` fires when it completes. Requests are
  /// serviced FIFO by the single arm. Utilization and per-second byte
  /// counters are recorded for the monitor.
  void submit(IoKind kind, std::uint64_t bytes, bool sequential,
              std::function<void()> done);

  /// Synchronous estimate: completion time if submitted now (includes the
  /// current backlog). Does not enqueue.
  [[nodiscard]] sim::SimTime estimated_completion(std::uint64_t bytes,
                                                  bool sequential) const;

  [[nodiscard]] const sim::TimeSeries& read_bytes_per_sec() const {
    return read_series_;
  }
  [[nodiscard]] const sim::TimeSeries& write_bytes_per_sec() const {
    return write_series_;
  }
  [[nodiscard]] std::uint64_t total_read_bytes() const { return total_read_; }
  [[nodiscard]] std::uint64_t total_write_bytes() const {
    return total_write_;
  }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

  /// Busy time accumulated (for utilization accounting).
  [[nodiscard]] sim::SimDuration busy_time() const { return busy_; }

  /// Attaches a fault injector: writes consult kDiskWriteFail; a fired
  /// fault models a failed sector write that the block layer retries, so
  /// the request is serviced twice (time penalty, no data loss).
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  /// Writes that needed an injected-failure retry.
  [[nodiscard]] std::uint64_t injected_write_retries() const {
    return write_retries_;
  }

 private:
  sim::Simulator& sim_;
  DiskConfig config_;
  sim::SimTime arm_free_at_ = 0;  ///< when the arm finishes its backlog
  sim::TimeSeries read_series_{sim::kSecond};
  sim::TimeSeries write_series_{sim::kSecond};
  std::uint64_t total_read_ = 0;
  std::uint64_t total_write_ = 0;
  std::uint64_t served_ = 0;
  sim::SimDuration busy_ = 0;
  sim::FaultInjector* faults_ = nullptr;
  std::uint64_t write_retries_ = 0;
};

}  // namespace rattrap::fs
