#include "fs/path.hpp"

namespace rattrap::fs {

std::string normalize(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    if (i == start) break;
    std::string_view part = path.substr(start, i - start);
    if (part == ".") continue;
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
      continue;
    }
    parts.push_back(part);
  }
  if (parts.empty()) return "/";
  std::string out;
  for (const auto& p : parts) {
    out.push_back('/');
    out.append(p);
  }
  return out;
}

std::string join(std::string_view base, std::string_view leaf) {
  std::string combined(base);
  combined.push_back('/');
  combined.append(leaf);
  return normalize(combined);
}

std::string parent(std::string_view path) {
  const std::string norm = normalize(path);
  const auto pos = norm.find_last_of('/');
  if (pos == 0 || pos == std::string::npos) return "/";
  return norm.substr(0, pos);
}

std::string basename(std::string_view path) {
  const std::string norm = normalize(path);
  if (norm == "/") return "";
  const auto pos = norm.find_last_of('/');
  return norm.substr(pos + 1);
}

std::vector<std::string> components(std::string_view path) {
  const std::string norm = normalize(path);
  std::vector<std::string> out;
  std::size_t i = 1;  // skip leading '/'
  while (i < norm.size()) {
    const auto next = norm.find('/', i);
    if (next == std::string::npos) {
      out.push_back(norm.substr(i));
      break;
    }
    out.push_back(norm.substr(i, next - i));
    i = next + 1;
  }
  return out;
}

bool is_under(std::string_view path, std::string_view prefix) {
  const std::string p = normalize(path);
  const std::string pre = normalize(prefix);
  if (pre == "/") return true;
  if (p == pre) return true;
  return p.size() > pre.size() && p.compare(0, pre.size(), pre) == 0 &&
         p[pre.size()] == '/';
}

}  // namespace rattrap::fs
