#include "fs/disk.hpp"

#include <algorithm>
#include <utility>

namespace rattrap::fs {

DiskModel::DiskModel(sim::Simulator& simulator, DiskConfig config)
    : sim_(simulator), config_(config) {}

sim::SimDuration DiskModel::service_time(std::uint64_t bytes,
                                         bool sequential) const {
  const double transfer_s =
      static_cast<double>(bytes) /
      (config_.sequential_mb_s * 1024.0 * 1024.0);
  double overhead_ms = 0.0;
  if (!sequential) {
    overhead_ms = config_.avg_seek_ms + config_.rotational_ms;
  } else {
    // A sequential run still pays one positioning cost up front; amortized
    // here as a small constant.
    overhead_ms = 0.5;
  }
  return sim::from_seconds(transfer_s) + sim::from_millis(overhead_ms);
}

sim::SimTime DiskModel::estimated_completion(std::uint64_t bytes,
                                             bool sequential) const {
  const sim::SimTime start = std::max(sim_.now(), arm_free_at_);
  return start + service_time(bytes, sequential);
}

void DiskModel::submit(IoKind kind, std::uint64_t bytes, bool sequential,
                       std::function<void()> done) {
  const sim::SimTime start = std::max(sim_.now(), arm_free_at_);
  sim::SimDuration service = service_time(bytes, sequential);
  if (kind == IoKind::kWrite && faults_ != nullptr &&
      faults_->should_fire(sim::FaultKind::kDiskWriteFail)) {
    // Failed write, retried by the block layer: the arm services the
    // request twice (seek + transfer) before completion.
    ++write_retries_;
    service += service_time(bytes, /*sequential=*/false);
  }
  const sim::SimTime finish = start + service;
  arm_free_at_ = finish;
  busy_ += service;
  ++served_;
  if (kind == IoKind::kRead) {
    total_read_ += bytes;
    read_series_.add_interval(start, finish, static_cast<double>(bytes));
  } else {
    total_write_ += bytes;
    write_series_.add_interval(start, finish, static_cast<double>(bytes));
  }
  sim_.schedule_at(finish, std::move(done));
}

}  // namespace rattrap::fs
