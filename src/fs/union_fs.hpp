// AUFS-style union filesystem with copy-on-write.
//
// A UnionFs stacks shared, read-only layers under one private writable top
// layer.  Lookups resolve top-down and honour whiteouts; writes copy the
// file up into the top layer first (COW).  This is the storage model behind
// the paper's Shared Resource Layer: all Cloud Android Containers mount the
// same read-only system layer, so a container's private delta stays tiny
// (< 7.1 MB vs ~1 GB per Android VM).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fs/layer.hpp"
#include "sim/time.hpp"

namespace rattrap::fs {

/// Result of a union lookup: which layer (0 = top) satisfied it.
struct UnionHit {
  const FileNode* node = nullptr;
  std::size_t layer_index = 0;  ///< 0 is the writable top layer
};

class UnionFs {
 public:
  /// Builds a union over `lower` layers (bottom-most first) plus a fresh
  /// private writable top layer named `name`.
  UnionFs(std::string name, std::vector<std::shared_ptr<const Layer>> lower);

  [[nodiscard]] const std::string& name() const { return top_.name(); }

  /// Resolves `path` top-down. Returns nullptr node when absent or hidden
  /// by a whiteout.
  [[nodiscard]] UnionHit lookup(std::string_view path) const;

  [[nodiscard]] bool exists(std::string_view path) const {
    return lookup(path).node != nullptr;
  }

  /// Reads a file: bumps access bookkeeping (atime / accessed flag for the
  /// Obs. 4 redundancy profiling) and returns its size, or -1 if absent.
  /// Reads of lower-layer files mark the access in a side table because
  /// lower layers are shared and immutable.
  std::int64_t read(std::string_view path, sim::SimTime now);

  /// Writes (creates or truncates) a file in the top layer. If the file
  /// currently lives in a lower layer, its bytes are first copied up (COW);
  /// the copied volume is recorded in cow_bytes().
  void write(std::string_view path, std::uint64_t size, sim::SimTime now);

  /// Appends `delta` bytes to a file, copying up first when needed.
  void append(std::string_view path, std::uint64_t delta, sim::SimTime now);

  /// Unlinks a file: removes it from the top layer and/or plants a whiteout
  /// when a lower layer still provides it. Returns true if it existed.
  bool unlink(std::string_view path);

  /// Private (top-layer) bytes — the container's real disk footprint.
  [[nodiscard]] std::uint64_t private_bytes() const {
    return top_.total_bytes();
  }

  /// Drops every top-layer entry (files, whiteouts, COW copies) — the
  /// drain-based reclaim path discards the container's private delta
  /// while the shared lower layers stay untouched.  Returns the regular
  /// file bytes freed.
  std::uint64_t purge_top_layer();

  /// Bytes materialized by copy-up operations so far.
  [[nodiscard]] std::uint64_t cow_bytes() const { return cow_bytes_; }

  /// Total logical bytes visible through the union (union semantics:
  /// top file shadows lower file of the same path).
  [[nodiscard]] std::uint64_t visible_bytes() const;

  /// Count of visible regular files.
  [[nodiscard]] std::size_t visible_files() const;

  /// Fraction of visible regular files never read since mount; reproduces
  /// the paper's Obs. 4 "68.4 % of the image never accessed" measurement.
  [[nodiscard]] double never_accessed_fraction() const;

  /// Bytes of visible regular files never read since mount.
  [[nodiscard]] std::uint64_t never_accessed_bytes() const;

  /// Direct access to the writable top layer (e.g. for snapshotting).
  [[nodiscard]] const Layer& top() const { return top_; }

  /// Number of layers including the top.
  [[nodiscard]] std::size_t layer_count() const { return lower_.size() + 1; }

  /// Visits every visible file (union semantics) in path order.
  void for_each_visible(
      const std::function<bool(const std::string&, const FileNode&)>& visit)
      const;

  /// Directory listing: the immediate children of `directory` visible
  /// through the union (names only, sorted, deduplicated across layers;
  /// both files and subdirectories appear once).
  [[nodiscard]] std::vector<std::string> readdir(
      std::string_view directory) const;

 private:
  Layer top_;
  std::vector<std::shared_ptr<const Layer>> lower_;  // bottom-most first
  // Paths in *lower* layers that have been read through this mount.
  std::set<std::string, std::less<>> lower_reads_;
  std::uint64_t cow_bytes_ = 0;

  /// Finds the topmost lower-layer node for `path` (ignoring the top).
  [[nodiscard]] const FileNode* lower_lookup(std::string_view path) const;
};

}  // namespace rattrap::fs
