// Mobile device model: local execution speed and energy.
//
// The clients in the paper are 5 Android phones; a device here is a CPU
// rate per workload kind (a phone runs the OCR JNI code, the Dalvik chess
// engine, etc. at its own speed) plus a power profile.  Local execution of
// a task converts the task's real work units through the device rate.
#pragma once

#include <array>
#include <cstdint>

#include "device/power.hpp"
#include "workloads/workload.hpp"

namespace rattrap::device {

/// Per-kind execution rates in work units per second.
using KindRates = std::array<double, workloads::kKindCount>;

/// Default phone rates (units/s), calibrated against the server rates in
/// core/calibration.hpp so local-vs-offload speedups match the paper:
///   OCR 0.45 M pixel-ops/s, Chess 38 k TT-search nodes/s (Dalvik),
///   VirusScan 0.4 M transitions/s, Linpack 15 MFLOPS (interpreted Java).
[[nodiscard]] KindRates phone_rates();

struct DeviceConfig {
  std::uint32_t id = 0;
  KindRates rates = phone_rates();
  /// Flash read bandwidth for local I/O-bound work (MB/s).
  double flash_mb_s = 28.0;
  /// Serialization cost of marshalling one offload request.
  sim::SimDuration serialize_cost = sim::from_millis(18);
};

class MobileDevice {
 public:
  explicit MobileDevice(DeviceConfig config) : config_(config) {}

  [[nodiscard]] std::uint32_t id() const { return config_.id; }
  [[nodiscard]] const DeviceConfig& config() const { return config_; }

  /// Local execution time of a task that produced `result` work units:
  /// compute at the device rate plus local flash I/O.
  [[nodiscard]] sim::SimDuration local_execution_time(
      workloads::Kind kind, const workloads::TaskResult& result) const;

  /// Energy of running the task locally.
  [[nodiscard]] double local_energy_mj(workloads::Kind kind,
                                       const workloads::TaskResult& result,
                                       const RadioProfile& radio) const;

 private:
  DeviceConfig config_;
};

}  // namespace rattrap::device
