#include "device/client.hpp"

namespace rattrap::device {

UploadPlan OffloadClient::plan_upload(const workloads::OffloadRequest& req,
                                      std::uint64_t apk_bytes,
                                      bool code_cached) const {
  UploadPlan plan;
  plan.push_code = !code_cached;
  plan.code_bytes = plan.push_code ? apk_bytes : 0;
  plan.file_bytes = req.task.input_file_bytes;
  plan.param_bytes = req.task.param_bytes;
  plan.control_bytes =
      sizes_.request_control + sizes_.response_control +
      sizes_.completion_control;
  return plan;
}

}  // namespace rattrap::device
