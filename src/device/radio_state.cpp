#include "device/radio_state.hpp"

#include <algorithm>
#include <cassert>

namespace rattrap::device {

const char* to_string(RadioState state) {
  switch (state) {
    case RadioState::kIdle:
      return "idle";
    case RadioState::kActive:
      return "active";
    case RadioState::kTail:
      return "tail";
  }
  return "?";
}

void RadioStateMachine::transfer(sim::SimTime start,
                                 sim::SimDuration duration) {
  assert(duration >= 0);
  assert(windows_.empty() || start >= windows_.back().first);
  const sim::SimTime end = start + duration;
  if (!windows_.empty() && start <= windows_.back().second) {
    windows_.back().second = std::max(windows_.back().second, end);
  } else {
    windows_.emplace_back(start, end);
  }
}

RadioStateMachine::Dwell RadioStateMachine::dwell(sim::SimTime until) const {
  Dwell dwell;
  sim::SimTime cursor = 0;
  bool after_activity = false;  // a window ended exactly at `cursor`
  const auto account_gap = [&](sim::SimTime gap_end) {
    if (gap_end <= cursor) return;
    if (after_activity) {
      const sim::SimDuration tail =
          std::min<sim::SimDuration>(profile_.tail_time, gap_end - cursor);
      dwell.tail += tail;
      dwell.idle += (gap_end - cursor) - tail;
    } else {
      dwell.idle += gap_end - cursor;
    }
    cursor = gap_end;
  };
  for (const auto& [start, end] : windows_) {
    if (start >= until) break;
    account_gap(std::min(start, until));
    if (cursor >= until) return dwell;
    const sim::SimTime active_end = std::min(end, until);
    if (active_end > cursor) {
      dwell.active += active_end - cursor;
      cursor = active_end;
      after_activity = true;
    }
    if (cursor >= until) return dwell;
  }
  account_gap(until);
  return dwell;
}

RadioState RadioStateMachine::state_at(sim::SimTime t) const {
  sim::SimTime last_end = -1;
  for (const auto& [start, end] : windows_) {
    if (t >= start && t < end) return RadioState::kActive;
    if (end <= t) last_end = std::max(last_end, end);
    if (start > t) break;
  }
  if (last_end >= 0 && t < last_end + profile_.tail_time) {
    return RadioState::kTail;
  }
  return RadioState::kIdle;
}

double RadioStateMachine::energy_mj(sim::SimTime until) const {
  const Dwell d = dwell(until);
  // Active power approximated as the tx level (tx ≈ rx for this model's
  // purposes; callers needing the split use EnergyMeter).
  return profile_.tx_mw * sim::to_seconds(d.active) +
         profile_.tail_mw * sim::to_seconds(d.tail) +
         profile_.idle_mw * sim::to_seconds(d.idle);
}

}  // namespace rattrap::device
