// Smartphone power model (after PowerTutor [22]).
//
// PowerTutor models per-component power states; the components that matter
// for offloading are the CPU (active vs idle) and the network radio, whose
// defining behaviour is the *tail*: after a transfer the radio lingers in
// a high-power state (DCH/FACH on 3G, RRC-connected on LTE) burning energy
// with no traffic.  Energy is reported in millijoules.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace rattrap::device {

/// Radio power profile of one network interface.
struct RadioProfile {
  std::string name;
  double tx_mw = 0.0;    ///< transmitting
  double rx_mw = 0.0;    ///< receiving
  double idle_mw = 0.0;  ///< connected-idle
  double tail_mw = 0.0;  ///< post-transfer high-power tail
  sim::SimDuration tail_time = 0;  ///< tail duration after last activity
};

/// Interface profiles calibrated to PowerTutor-class measurements.
[[nodiscard]] RadioProfile wifi_radio();      // LAN / WAN WiFi
[[nodiscard]] RadioProfile radio_3g();
[[nodiscard]] RadioProfile radio_4g();

struct CpuProfile {
  double active_mw = 0.0;  ///< full-load compute
  double idle_mw = 0.0;    ///< waiting (screen-on idle)
};

[[nodiscard]] CpuProfile phone_cpu();

/// Screen power while the offloading app is in the foreground
/// (PowerTutor's display model simplified to a constant). The paper's
/// whole-device measurements include it for the entire experiment, local
/// or offloaded.
[[nodiscard]] double screen_mw();

/// Accumulates the energy of one offloading (or local) episode.
class EnergyMeter {
 public:
  EnergyMeter(CpuProfile cpu, RadioProfile radio)
      : cpu_(cpu), radio_(radio) {}

  /// Local computation for `duration` at full CPU load.
  void add_compute(sim::SimDuration duration);

  /// Idle wait (CPU idle, radio connected-idle) for `duration`.
  void add_wait(sim::SimDuration duration);

  /// Radio transmission for `duration` (upload).
  void add_tx(sim::SimDuration duration);

  /// Radio reception for `duration` (download).
  void add_rx(sim::SimDuration duration);

  /// One post-transfer radio tail. Callers fold consecutive transfers into
  /// a single tail when they overlap (the meter does not track wall time).
  void add_radio_tail();

  [[nodiscard]] double millijoules() const { return mj_; }

 private:
  CpuProfile cpu_;
  RadioProfile radio_;
  double mj_ = 0.0;
};

}  // namespace rattrap::device
