// Explicit radio state machine (the RRC/PSM model behind PowerTutor).
//
// EnergyMeter integrates power over caller-attributed phases, which is
// what the Fig. 10 reproduction needs.  This class is the finer model:
// the radio walks IDLE → ACTIVE on traffic and ACTIVE → TAIL → IDLE on
// inactivity timers, and energy falls out of the dwell time in each
// state.  It answers questions the phase integrator cannot, e.g. how
// request spacing interacts with the tail timer (the classic "bundle your
// transfers" energy result).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "device/power.hpp"
#include "sim/time.hpp"

namespace rattrap::device {

enum class RadioState : std::uint8_t {
  kIdle,    ///< connected-idle (PSM / RRC idle)
  kActive,  ///< transmitting or receiving
  kTail,    ///< post-activity high-power lingering
};

[[nodiscard]] const char* to_string(RadioState state);

class RadioStateMachine {
 public:
  explicit RadioStateMachine(RadioProfile profile)
      : profile_(std::move(profile)) {}

  /// Accounts a transfer occupying the radio for [start, start+duration).
  /// Transfers must be fed in nondecreasing start order; overlapping
  /// transfers merge into one active window.
  void transfer(sim::SimTime start, sim::SimDuration duration);

  /// State the radio is in at instant `t` (>= the last observed event).
  [[nodiscard]] RadioState state_at(sim::SimTime t) const;

  /// Total energy consumed in [0, until], including idle floor power and
  /// any tail still draining at `until`.
  [[nodiscard]] double energy_mj(sim::SimTime until) const;

  /// Dwell time per state over [0, until].
  struct Dwell {
    sim::SimDuration idle = 0;
    sim::SimDuration active = 0;
    sim::SimDuration tail = 0;
  };
  [[nodiscard]] Dwell dwell(sim::SimTime until) const;

  [[nodiscard]] const RadioProfile& profile() const { return profile_; }

 private:
  RadioProfile profile_;
  // Closed active windows [start, end) in order; maintained merged.
  std::vector<std::pair<sim::SimTime, sim::SimTime>> windows_;
};

}  // namespace rattrap::device
