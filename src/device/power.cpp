#include "device/power.hpp"

namespace rattrap::device {
namespace {
double mj_of(double mw, sim::SimDuration t) {
  return mw * sim::to_seconds(t);  // mW × s = mJ
}
}  // namespace

RadioProfile wifi_radio() {
  // 802.11 PSM-adaptive: high-power ~710 mW active, short tail.
  return RadioProfile{"wifi", 710.0, 650.0, 38.0, 240.0,
                      sim::from_millis(220)};
}

RadioProfile radio_3g() {
  // UMTS: DCH ~570 mW with a long DCH→FACH→IDLE tail.
  return RadioProfile{"3g", 570.0, 540.0, 10.0, 460.0,
                      sim::from_millis(4200)};
}

RadioProfile radio_4g() {
  // LTE: high instantaneous power, RRC-connected tail ~1.5 s (short DRX).
  return RadioProfile{"4g", 1210.0, 1080.0, 25.0, 620.0,
                      sim::from_millis(1500)};
}

CpuProfile phone_cpu() {
  // Full-load big-core compute vs screen-on idle.
  return CpuProfile{920.0, 92.0};
}

double screen_mw() { return 410.0; }

void EnergyMeter::add_compute(sim::SimDuration duration) {
  mj_ += mj_of(cpu_.active_mw, duration);
}

void EnergyMeter::add_wait(sim::SimDuration duration) {
  mj_ += mj_of(cpu_.idle_mw + radio_.idle_mw, duration);
}

void EnergyMeter::add_tx(sim::SimDuration duration) {
  mj_ += mj_of(cpu_.idle_mw + radio_.tx_mw, duration);
}

void EnergyMeter::add_rx(sim::SimDuration duration) {
  mj_ += mj_of(cpu_.idle_mw + radio_.rx_mw, duration);
}

void EnergyMeter::add_radio_tail() {
  mj_ += mj_of(radio_.tail_mw, radio_.tail_time);
}

}  // namespace rattrap::device
