#include "device/device.hpp"

#include <cassert>

namespace rattrap::device {

KindRates phone_rates() {
  KindRates rates{};
  rates[static_cast<std::size_t>(workloads::Kind::kOcr)] = 0.45e6;
  rates[static_cast<std::size_t>(workloads::Kind::kChess)] = 38e3;
  rates[static_cast<std::size_t>(workloads::Kind::kVirusScan)] = 0.40e6;
  rates[static_cast<std::size_t>(workloads::Kind::kLinpack)] = 15e6;
  return rates;
}

sim::SimDuration MobileDevice::local_execution_time(
    workloads::Kind kind, const workloads::TaskResult& result) const {
  const double rate = config_.rates[static_cast<std::size_t>(kind)];
  assert(rate > 0);
  const double compute_s =
      static_cast<double>(result.units.compute) / rate;
  const double io_s = static_cast<double>(result.units.io_bytes) /
                      (config_.flash_mb_s * 1024.0 * 1024.0);
  return sim::from_seconds(compute_s + io_s);
}

double MobileDevice::local_energy_mj(workloads::Kind kind,
                                     const workloads::TaskResult& result,
                                     const RadioProfile& radio) const {
  EnergyMeter meter(phone_cpu(), radio);
  meter.add_compute(local_execution_time(kind, result));
  return meter.millijoules();
}

}  // namespace rattrap::device
