// Offloading client: the device-side half of the offloading framework.
//
// Rattrap "leaves the offloading details in clients to existing offloading
// frameworks and only cares about the cloud side" (§V); this client models
// that existing framework: reflection-based request construction, the
// code-push negotiation (the server answers HIT/MISS against its App
// Warehouse, Fig. 8), and an offload-or-local decision.
#pragma once

#include <cstdint>

#include "device/device.hpp"
#include "net/connection.hpp"
#include "net/message.hpp"
#include "workloads/generator.hpp"

namespace rattrap::device {

/// Sizes of the protocol's control exchanges.
struct ProtocolSizes {
  std::uint64_t request_control = 1536;   ///< offload request + method ref
  std::uint64_t response_control = 256;   ///< accept/HIT/MISS answer
  std::uint64_t completion_control = 384; ///< final ack
};

/// What the client uploads for one request, given the server's cache
/// answer.  `push_code` is true on MISS: the APK travels with the task.
struct UploadPlan {
  bool push_code = false;
  std::uint64_t code_bytes = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t param_bytes = 0;
  std::uint64_t control_bytes = 0;

  [[nodiscard]] std::uint64_t total() const {
    return code_bytes + file_bytes + param_bytes + control_bytes;
  }
};

class OffloadClient {
 public:
  OffloadClient(const MobileDevice& device, ProtocolSizes sizes = {})
      : device_(device), sizes_(sizes) {}

  /// Builds the upload plan for a request. `code_cached` is the server's
  /// App Warehouse answer (always MISS for platforms without a code cache
  /// unless this very environment already received the code).
  [[nodiscard]] UploadPlan plan_upload(const workloads::OffloadRequest& req,
                                       std::uint64_t apk_bytes,
                                       bool code_cached) const;

  /// Simple offload decision: offload when the estimated remote response
  /// beats local execution. (The paper's benches always offload; the
  /// decision is exercised by tests and the trace example.)
  [[nodiscard]] bool should_offload(sim::SimDuration local_estimate,
                                    sim::SimDuration remote_estimate) const {
    return remote_estimate < local_estimate;
  }

  [[nodiscard]] const MobileDevice& device() const { return device_; }
  [[nodiscard]] const ProtocolSizes& protocol() const { return sizes_; }

 private:
  const MobileDevice& device_;
  ProtocolSizes sizes_;
};

}  // namespace rattrap::device
