// Hypervisor: VM registry plus host-side resource accounting.
//
// The baseline platform (VM-based cloud, §VI-A) creates one Android-x86 VM
// per runtime environment: 1 vCPU, 512 MB, ~1.1 GB disk image each.  The
// hypervisor charges full memory at start (no ballooning) and full image
// size per VM on disk — the redundancy the Shared Resource Layer removes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "fs/disk.hpp"
#include "sim/simulator.hpp"
#include "vm/vm.hpp"

namespace rattrap::vm {

class Hypervisor {
 public:
  Hypervisor(sim::Simulator& simulator, fs::DiskModel& disk,
             std::uint64_t host_memory);

  /// Creates a VM; returns nullptr when host memory cannot hold it.
  VirtualMachine* create(VmConfig config);

  /// Boots a VM through `plan`.
  bool boot(VmId id, std::vector<BootStage> plan,
            std::function<void(sim::SimTime)> on_booted);

  /// Stops a VM (memory stays reserved until destroy, as with a powered-
  /// off-but-defined VirtualBox machine keeping its allocation on resume).
  bool stop(VmId id);

  /// Destroys a VM and releases its memory and disk image.
  bool destroy(VmId id);

  [[nodiscard]] VirtualMachine* find(VmId id) const;
  [[nodiscard]] std::size_t count() const { return vms_.size(); }
  [[nodiscard]] std::size_t running_count() const;

  /// Host memory committed to VMs.
  [[nodiscard]] std::uint64_t memory_committed() const {
    return memory_committed_;
  }
  [[nodiscard]] std::uint64_t host_memory() const { return host_memory_; }

  /// Host disk consumed by VM images.
  [[nodiscard]] std::uint64_t disk_committed() const {
    return disk_committed_;
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] fs::DiskModel& disk() { return disk_; }

 private:
  sim::Simulator& sim_;
  fs::DiskModel& disk_;
  std::uint64_t host_memory_;
  std::uint64_t memory_committed_ = 0;
  std::uint64_t disk_committed_ = 0;
  std::map<VmId, std::unique_ptr<VirtualMachine>> vms_;
  VmId next_id_ = 1;
};

}  // namespace rattrap::vm
