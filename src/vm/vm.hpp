// Virtual machine model (the VirtualBox + Android-x86 baseline).
//
// A VM boots through the full device-style stage sequence — firmware POST,
// bootloader, kernel+ramdisk load, root-fs mount, then the guest userspace
// boot — and each stage costs guest CPU time plus disk reads issued
// against the host disk.  Hardware virtualization also taxes steady-state
// execution: guest compute runs at `cpu_factor` of native speed and guest
// I/O at `io_factor` of native throughput.  These two factors are what the
// container platform avoids.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fs/disk.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rattrap::vm {

using VmId = std::uint32_t;

enum class VmState : std::uint8_t {
  kCreated,
  kBooting,
  kRunning,
  kStopped,
};

[[nodiscard]] const char* to_string(VmState state);

/// One stage of the boot sequence.
struct BootStage {
  std::string name;
  sim::SimDuration cpu_time = 0;   ///< guest-CPU work at native speed
  std::uint64_t disk_read = 0;     ///< bytes read from the VM image
};

struct VmConfig {
  std::string name;
  std::uint32_t vcpus = 1;
  std::uint64_t memory = 512ull * 1024 * 1024;  ///< allocated up front
  std::uint64_t disk_image = 0;                 ///< image size on host disk
  double cpu_factor = 0.92;  ///< guest compute speed relative to native
  double io_factor = 0.55;   ///< guest I/O throughput relative to native
};

class VirtualMachine {
 public:
  VirtualMachine(VmId id, VmConfig config);

  [[nodiscard]] VmId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const VmConfig& config() const { return config_; }
  [[nodiscard]] VmState state() const { return state_; }

  /// Starts booting through `plan`; `on_booted` fires (with the completion
  /// time) once the last stage retires and the VM is kRunning.
  /// Returns false when the VM is not startable.
  bool boot(sim::Simulator& simulator, fs::DiskModel& disk,
            std::vector<BootStage> plan,
            std::function<void(sim::SimTime)> on_booted);

  /// Stops the VM (also aborts an in-flight boot).
  void stop();

  /// Wall time one unit of guest CPU work takes under virtualization.
  [[nodiscard]] sim::SimDuration virtualize_cpu(sim::SimDuration native) const;

  /// Extra latency virtualized I/O adds on top of a native transfer.
  [[nodiscard]] sim::SimDuration io_penalty(sim::SimDuration native) const;

  /// Boot wall-clock duration of the last completed boot (0 before).
  [[nodiscard]] sim::SimDuration last_boot_duration() const {
    return boot_duration_;
  }

 private:
  void run_stage(sim::Simulator& simulator, fs::DiskModel& disk,
                 std::size_t index);

  VmId id_;
  VmConfig config_;
  VmState state_ = VmState::kCreated;
  std::vector<BootStage> plan_;
  std::function<void(sim::SimTime)> on_booted_;
  sim::SimTime boot_start_ = 0;
  sim::SimDuration boot_duration_ = 0;
  std::uint64_t boot_epoch_ = 0;  ///< invalidates stale stage callbacks
};

}  // namespace rattrap::vm
