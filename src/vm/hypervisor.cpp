#include "vm/hypervisor.hpp"

namespace rattrap::vm {

Hypervisor::Hypervisor(sim::Simulator& simulator, fs::DiskModel& disk,
                       std::uint64_t host_memory)
    : sim_(simulator), disk_(disk), host_memory_(host_memory) {}

VirtualMachine* Hypervisor::create(VmConfig config) {
  if (memory_committed_ + config.memory > host_memory_) return nullptr;
  const VmId id = next_id_++;
  memory_committed_ += config.memory;
  disk_committed_ += config.disk_image;
  auto vm = std::make_unique<VirtualMachine>(id, std::move(config));
  VirtualMachine* raw = vm.get();
  vms_.emplace(id, std::move(vm));
  return raw;
}

bool Hypervisor::boot(VmId id, std::vector<BootStage> plan,
                      std::function<void(sim::SimTime)> on_booted) {
  VirtualMachine* vm = find(id);
  if (vm == nullptr) return false;
  return vm->boot(sim_, disk_, std::move(plan), std::move(on_booted));
}

bool Hypervisor::stop(VmId id) {
  VirtualMachine* vm = find(id);
  if (vm == nullptr) return false;
  vm->stop();
  return true;
}

bool Hypervisor::destroy(VmId id) {
  const auto it = vms_.find(id);
  if (it == vms_.end()) return false;
  it->second->stop();
  memory_committed_ -= it->second->config().memory;
  disk_committed_ -= it->second->config().disk_image;
  vms_.erase(it);
  return true;
}

VirtualMachine* Hypervisor::find(VmId id) const {
  const auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.get();
}

std::size_t Hypervisor::running_count() const {
  std::size_t n = 0;
  for (const auto& [id, vm] : vms_) {
    (void)id;
    if (vm->state() == VmState::kRunning) ++n;
  }
  return n;
}

}  // namespace rattrap::vm
