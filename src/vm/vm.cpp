#include "vm/vm.hpp"

#include <cassert>
#include <utility>

namespace rattrap::vm {

const char* to_string(VmState state) {
  switch (state) {
    case VmState::kCreated:
      return "created";
    case VmState::kBooting:
      return "booting";
    case VmState::kRunning:
      return "running";
    case VmState::kStopped:
      return "stopped";
  }
  return "?";
}

VirtualMachine::VirtualMachine(VmId id, VmConfig config)
    : id_(id), config_(std::move(config)) {}

sim::SimDuration VirtualMachine::virtualize_cpu(
    sim::SimDuration native) const {
  return static_cast<sim::SimDuration>(static_cast<double>(native) /
                                       config_.cpu_factor);
}

sim::SimDuration VirtualMachine::io_penalty(sim::SimDuration native) const {
  const double total = static_cast<double>(native) / config_.io_factor;
  return static_cast<sim::SimDuration>(total) - native;
}

bool VirtualMachine::boot(sim::Simulator& simulator, fs::DiskModel& disk,
                          std::vector<BootStage> plan,
                          std::function<void(sim::SimTime)> on_booted) {
  if (state_ != VmState::kCreated && state_ != VmState::kStopped) {
    return false;
  }
  state_ = VmState::kBooting;
  plan_ = std::move(plan);
  on_booted_ = std::move(on_booted);
  boot_start_ = simulator.now();
  ++boot_epoch_;
  run_stage(simulator, disk, 0);
  return true;
}

void VirtualMachine::run_stage(sim::Simulator& simulator, fs::DiskModel& disk,
                               std::size_t index) {
  if (state_ != VmState::kBooting) return;  // aborted
  if (index >= plan_.size()) {
    state_ = VmState::kRunning;
    boot_duration_ = simulator.now() - boot_start_;
    if (on_booted_) {
      auto done = std::move(on_booted_);
      on_booted_ = nullptr;
      done(simulator.now());
    }
    return;
  }
  const BootStage& stage = plan_[index];
  const std::uint64_t epoch = boot_epoch_;
  const sim::SimDuration cpu = virtualize_cpu(stage.cpu_time);

  auto after_io = [this, &simulator, &disk, index, epoch, cpu]() {
    if (epoch != boot_epoch_ || state_ != VmState::kBooting) return;
    simulator.schedule_in(cpu, [this, &simulator, &disk, index, epoch]() {
      if (epoch != boot_epoch_ || state_ != VmState::kBooting) return;
      run_stage(simulator, disk, index + 1);
    });
  };

  if (stage.disk_read == 0) {
    after_io();
    return;
  }
  // Virtualized I/O: the native transfer plus the virtio/emulation penalty
  // modelled as extra latency after the device completes.
  const sim::SimDuration native = disk.service_time(stage.disk_read, true);
  const sim::SimDuration penalty = io_penalty(native);
  disk.submit(fs::IoKind::kRead, stage.disk_read, true,
              [&simulator, penalty, after_io = std::move(after_io)]() {
                simulator.schedule_in(penalty, after_io);
              });
}

void VirtualMachine::stop() {
  if (state_ == VmState::kStopped) return;
  ++boot_epoch_;  // cancels pending stage callbacks
  on_booted_ = nullptr;
  state_ = VmState::kStopped;
}

}  // namespace rattrap::vm
