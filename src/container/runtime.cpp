#include "container/runtime.hpp"

namespace rattrap::container {

Container& ContainerRuntime::create(ContainerConfig config) {
  const ContainerId id = next_id_++;
  auto container = std::make_unique<Container>(id, std::move(config), kernel_);
  Container& ref = *container;
  containers_.emplace(id, std::move(container));
  return ref;
}

std::optional<sim::SimDuration> ContainerRuntime::start(ContainerId id) {
  Container* c = find(id);
  if (c == nullptr) return std::nullopt;
  Cgroup* group = cgroups_.find(c->name());
  if (group == nullptr) {
    group = cgroups_.create(c->name(), c->config().cpu_shares,
                            c->config().memory_limit);
  }
  if (group == nullptr) return std::nullopt;
  return c->start(*group);
}

sim::SimDuration ContainerRuntime::stop(ContainerId id) {
  Container* c = find(id);
  return c == nullptr ? 0 : c->stop();
}

bool ContainerRuntime::crash(ContainerId id) {
  Container* c = find(id);
  if (c == nullptr || c->state() != ContainerState::kRunning) return false;
  c->stop();  // kernel-side reaping is identical to a clean stop
  ++crashes_;
  return true;
}

bool ContainerRuntime::destroy(ContainerId id) {
  Container* c = find(id);
  if (c == nullptr) return false;
  c->stop();
  c->destroy();
  cgroups_.destroy(c->name());
  containers_.erase(id);
  return true;
}

Container* ContainerRuntime::find(ContainerId id) const {
  const auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : it->second.get();
}

std::size_t ContainerRuntime::running_count() const {
  std::size_t n = 0;
  for (const auto& [id, c] : containers_) {
    (void)id;
    if (c->state() == ContainerState::kRunning) ++n;
  }
  return n;
}

std::vector<ContainerId> ContainerRuntime::ids() const {
  std::vector<ContainerId> out;
  out.reserve(containers_.size());
  for (const auto& [id, c] : containers_) {
    (void)c;
    out.push_back(id);
  }
  return out;
}

}  // namespace rattrap::container
