// Kernel namespace models: pid, mount, network, uts, ipc.
//
// Each container gets its own process space, root filesystem and network
// resources (§IV-B).  The models keep the state the platform actually
// exercises: a pid table with an init process, a mount namespace rooted at
// a union filesystem, and a network namespace with an address and a veth
// pair name.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fs/union_fs.hpp"

namespace rattrap::container {

using Pid = std::int32_t;

/// Process table of one pid namespace. Pid 1 is reserved for init and is
/// spawned implicitly on construction... of the first process.
class PidNamespace {
 public:
  /// Spawns a process; the first spawn becomes pid 1 (init).
  Pid spawn(std::string name);

  /// Kills a process. Killing pid 1 kills every process (namespace dies
  /// with its init, as in the kernel).
  bool kill(Pid pid);

  [[nodiscard]] bool exists(Pid pid) const { return procs_.contains(pid); }
  [[nodiscard]] std::optional<std::string> name_of(Pid pid) const;
  [[nodiscard]] std::size_t count() const { return procs_.size(); }
  [[nodiscard]] std::vector<Pid> pids() const;

 private:
  std::map<Pid, std::string> procs_;
  Pid next_ = 1;
};

/// Mount namespace: a private view rooted at a union filesystem.
struct MountNamespace {
  std::shared_ptr<fs::UnionFs> root;
};

/// Network namespace: an interface pair and an address.
struct NetNamespace {
  std::string veth_host;  ///< host-side interface, e.g. "veth-cac3"
  std::string address;    ///< e.g. "10.0.3.2"
};

/// UTS namespace: hostname isolation.
struct UtsNamespace {
  std::string hostname;
};

/// IPC namespace marker (System V objects are not modelled further).
struct IpcNamespace {
  std::uint32_t id = 0;
};

/// Bundle of all namespaces owned by one container.
struct NamespaceSet {
  PidNamespace pid;
  MountNamespace mnt;
  NetNamespace net;
  UtsNamespace uts;
  IpcNamespace ipc;
};

}  // namespace rattrap::container
