// Content-addressed image registry (the §VIII "Rattrap on Docker" future
// work).
//
// Docker distributes images as stacks of content-addressed layers; a host
// pulling an image transfers only the layers its local store lacks.  For
// Rattrap this is the distribution story of the Shared Resource Layer:
// the customized system image is one shared base layer every cloud node
// pulls once, with tiny per-variant layers on top — "the real
// just-in-time provision of Cloud Android Container".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fs/layer.hpp"

namespace rattrap::container {

/// Content digest of a layer (deterministic function of its entries).
using Digest = std::uint64_t;

/// Computes a layer's digest from its (path, kind, size) entries; two
/// layers with identical contents hash identically regardless of name.
[[nodiscard]] Digest layer_digest(const fs::Layer& layer);

/// An image: a named, ordered stack of layer digests (bottom-most first).
struct ImageManifest {
  std::string reference;          ///< e.g. "rattrap/cac:4.4-offload"
  std::vector<Digest> layers;     ///< bottom-most first
  std::uint64_t total_bytes = 0;  ///< sum of layer bytes
};

/// A host's local content store: the layers it already holds.
class LayerStore {
 public:
  [[nodiscard]] bool has(Digest digest) const {
    return layers_.contains(digest);
  }

  /// Adds a layer (no-op when the digest is already present).
  void add(Digest digest, std::shared_ptr<const fs::Layer> layer);

  [[nodiscard]] std::shared_ptr<const fs::Layer> get(Digest digest) const;

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

  /// Bytes held (each stored layer counted once — the dedup property).
  [[nodiscard]] std::uint64_t stored_bytes() const;

 private:
  std::map<Digest, std::shared_ptr<const fs::Layer>> layers_;
};

/// Outcome of pulling an image into a local store.
struct PullResult {
  bool ok = false;
  std::uint64_t bytes_transferred = 0;  ///< layers the host lacked
  std::uint64_t bytes_deduplicated = 0; ///< layers already present
  std::vector<std::shared_ptr<const fs::Layer>> layers;  ///< bottom first
};

class ImageRegistry {
 public:
  /// Uploads a layer; returns its digest (idempotent).
  Digest push_layer(std::shared_ptr<const fs::Layer> layer);

  /// Publishes a manifest. Fails (false) when any referenced layer has
  /// not been pushed.
  bool push_image(std::string reference, std::vector<Digest> layers);

  [[nodiscard]] const ImageManifest* find(std::string_view reference) const;

  /// Pulls `reference` into `store`, transferring only missing layers.
  [[nodiscard]] PullResult pull(std::string_view reference,
                                LayerStore& store) const;

  [[nodiscard]] std::size_t image_count() const { return manifests_.size(); }
  [[nodiscard]] std::size_t layer_count() const { return blobs_.size(); }

  /// All published references (sorted).
  [[nodiscard]] std::vector<std::string> references() const;

 private:
  std::map<Digest, std::shared_ptr<const fs::Layer>> blobs_;
  std::map<std::string, ImageManifest, std::less<>> manifests_;
};

}  // namespace rattrap::container
