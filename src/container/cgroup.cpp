#include "container/cgroup.hpp"

#include <algorithm>

namespace rattrap::container {

Cgroup::Cgroup(std::string name, std::uint32_t cpu_shares,
               std::uint64_t memory_limit)
    : name_(std::move(name)),
      cpu_shares_(cpu_shares),
      memory_limit_(memory_limit) {}

bool Cgroup::charge_memory(std::uint64_t bytes) {
  if (memory_usage_ + bytes > memory_limit_) return false;
  memory_usage_ += bytes;
  memory_peak_ = std::max(memory_peak_, memory_usage_);
  return true;
}

void Cgroup::uncharge_memory(std::uint64_t bytes) {
  memory_usage_ = bytes > memory_usage_ ? 0 : memory_usage_ - bytes;
}

Cgroup* CgroupHierarchy::create(const std::string& name,
                                std::uint32_t cpu_shares,
                                std::uint64_t memory_limit) {
  if (groups_.contains(name)) return nullptr;
  auto group = std::make_unique<Cgroup>(name, cpu_shares, memory_limit);
  Cgroup* raw = group.get();
  groups_.emplace(name, std::move(group));
  return raw;
}

Cgroup* CgroupHierarchy::find(std::string_view name) const {
  const auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : it->second.get();
}

bool CgroupHierarchy::destroy(std::string_view name) {
  const auto it = groups_.find(name);
  if (it == groups_.end()) return false;
  groups_.erase(it);
  return true;
}

std::uint64_t CgroupHierarchy::total_memory_usage() const {
  std::uint64_t sum = 0;
  for (const auto& [name, group] : groups_) {
    (void)name;
    sum += group->memory_usage();
  }
  return sum;
}

std::uint64_t CgroupHierarchy::total_cpu_shares() const {
  std::uint64_t sum = 0;
  for (const auto& [name, group] : groups_) {
    (void)name;
    sum += group->cpu_shares();
  }
  return sum;
}

}  // namespace rattrap::container
