#include "container/namespaces.hpp"

namespace rattrap::container {

Pid PidNamespace::spawn(std::string name) {
  const Pid pid = next_++;
  procs_.emplace(pid, std::move(name));
  return pid;
}

bool PidNamespace::kill(Pid pid) {
  if (!procs_.contains(pid)) return false;
  if (pid == 1) {
    procs_.clear();  // init died: the whole namespace goes down
    return true;
  }
  procs_.erase(pid);
  return true;
}

std::optional<std::string> PidNamespace::name_of(Pid pid) const {
  const auto it = procs_.find(pid);
  if (it == procs_.end()) return std::nullopt;
  return it->second;
}

std::vector<Pid> PidNamespace::pids() const {
  std::vector<Pid> out;
  out.reserve(procs_.size());
  for (const auto& [pid, name] : procs_) {
    (void)name;
    out.push_back(pid);
  }
  return out;
}

}  // namespace rattrap::container
