// Container object and lifecycle (LXC-like).
//
// A container is namespaces + cgroup + a union-mounted rootfs on a shared
// kernel.  Starting one costs milliseconds (clone, pivot_root, veth
// setup), which is why the paper's Cloud Android Container boots ~16x
// faster than an Android VM: the expensive part that remains is the
// *userspace* boot, handled by the android module.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <string>
#include <vector>

#include "container/cgroup.hpp"
#include "container/namespaces.hpp"
#include "fs/union_fs.hpp"
#include "kernel/device.hpp"
#include "kernel/kernel.hpp"
#include "sim/time.hpp"

namespace rattrap::container {

enum class ContainerState : std::uint8_t {
  kCreated,
  kRunning,
  kStopped,
  kDestroyed,
};

[[nodiscard]] const char* to_string(ContainerState state);

using ContainerId = std::uint32_t;

struct ContainerConfig {
  std::string name;
  /// Read-only lower layers (bottom-most first) for the rootfs union.
  std::vector<std::shared_ptr<const fs::Layer>> lower_layers;
  std::uint32_t cpu_shares = 1024;
  std::uint64_t memory_limit = 512ull * 1024 * 1024;
  /// Quota on the container's private (COW top) layer; 0 = unlimited.
  std::uint64_t disk_quota = 0;
  /// Kernel features the container's userspace requires to run; start()
  /// fails when any is missing (the incompatibility OS-level
  /// virtualization hits without the Android Container Driver).
  std::vector<std::string> required_features;
};

class Container {
 public:
  Container(ContainerId id, ContainerConfig config, kernel::HostKernel& k);
  ~Container();

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  [[nodiscard]] ContainerId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] ContainerState state() const { return state_; }
  [[nodiscard]] const ContainerConfig& config() const { return config_; }

  /// Starts the container: verifies kernel features, creates namespaces
  /// and the device namespace, union-mounts the rootfs, spawns init, and
  /// charges base memory.  Returns the simulated cost, or std::nullopt on
  /// failure (missing feature / out of memory), leaving state unchanged.
  std::optional<sim::SimDuration> start(Cgroup& cgroup);

  /// Stops the container: kills all processes, destroys the device
  /// namespace, releases memory. Returns the simulated cost.
  sim::SimDuration stop();

  /// Destroys a stopped container (rootfs delta discarded).
  void destroy();

  /// Live accessors; only valid while running.
  [[nodiscard]] NamespaceSet& namespaces() { return namespaces_; }
  [[nodiscard]] fs::UnionFs* rootfs() { return rootfs_.get(); }
  [[nodiscard]] const fs::UnionFs* rootfs() const { return rootfs_.get(); }
  [[nodiscard]] kernel::DevNsId devns() const { return devns_; }
  [[nodiscard]] Cgroup* cgroup() const { return cgroup_; }

  /// Private disk footprint: the container's writable layer only.
  [[nodiscard]] std::uint64_t private_disk_bytes() const;

  /// Writes into the rootfs honouring the disk quota. Returns false (and
  /// writes nothing) when the quota would be exceeded.
  bool write_file(std::string_view path, std::uint64_t size,
                  sim::SimTime now);

 private:
  ContainerId id_;
  ContainerConfig config_;
  kernel::HostKernel& kernel_;
  ContainerState state_ = ContainerState::kCreated;
  NamespaceSet namespaces_;
  std::unique_ptr<fs::UnionFs> rootfs_;
  kernel::DevNsId devns_ = kernel::kHostDevNs;
  Cgroup* cgroup_ = nullptr;
  std::uint64_t base_memory_ = 0;
};

}  // namespace rattrap::container
