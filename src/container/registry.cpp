#include "container/registry.hpp"

namespace rattrap::container {
namespace {

// FNV-1a over a byte span.
void mix(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
}

}  // namespace

Digest layer_digest(const fs::Layer& layer) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  layer.for_each([&](const std::string& path, const fs::FileNode& node) {
    mix(hash, path.data(), path.size());
    const std::uint64_t size = node.size;
    mix(hash, &size, sizeof size);
    const auto kind = static_cast<std::uint8_t>(node.kind);
    mix(hash, &kind, sizeof kind);
    return true;
  });
  return hash;
}

void LayerStore::add(Digest digest, std::shared_ptr<const fs::Layer> layer) {
  layers_.emplace(digest, std::move(layer));
}

std::shared_ptr<const fs::Layer> LayerStore::get(Digest digest) const {
  const auto it = layers_.find(digest);
  return it == layers_.end() ? nullptr : it->second;
}

std::uint64_t LayerStore::stored_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [digest, layer] : layers_) {
    (void)digest;
    sum += layer->total_bytes();
  }
  return sum;
}

Digest ImageRegistry::push_layer(std::shared_ptr<const fs::Layer> layer) {
  const Digest digest = layer_digest(*layer);
  blobs_.emplace(digest, std::move(layer));
  return digest;
}

bool ImageRegistry::push_image(std::string reference,
                               std::vector<Digest> layers) {
  std::uint64_t total = 0;
  for (const Digest digest : layers) {
    const auto it = blobs_.find(digest);
    if (it == blobs_.end()) return false;
    total += it->second->total_bytes();
  }
  ImageManifest manifest;
  manifest.reference = reference;
  manifest.layers = std::move(layers);
  manifest.total_bytes = total;
  manifests_.insert_or_assign(std::move(reference), std::move(manifest));
  return true;
}

const ImageManifest* ImageRegistry::find(std::string_view reference) const {
  const auto it = manifests_.find(reference);
  return it == manifests_.end() ? nullptr : &it->second;
}

PullResult ImageRegistry::pull(std::string_view reference,
                               LayerStore& store) const {
  PullResult result;
  const ImageManifest* manifest = find(reference);
  if (manifest == nullptr) return result;
  for (const Digest digest : manifest->layers) {
    const auto it = blobs_.find(digest);
    if (it == blobs_.end()) return PullResult{};  // corrupt manifest
    if (store.has(digest)) {
      result.bytes_deduplicated += it->second->total_bytes();
    } else {
      result.bytes_transferred += it->second->total_bytes();
      store.add(digest, it->second);
    }
    result.layers.push_back(store.get(digest));
  }
  result.ok = true;
  return result;
}

std::vector<std::string> ImageRegistry::references() const {
  std::vector<std::string> out;
  out.reserve(manifests_.size());
  for (const auto& [reference, manifest] : manifests_) {
    (void)manifest;
    out.push_back(reference);
  }
  return out;
}

}  // namespace rattrap::container
