// Control groups: CPU shares and memory limits with usage accounting.
//
// Rattrap schedules at process level rather than VM level (§IV-A, Monitor
// & Scheduler); cgroups are the mechanism that bounds each Cloud Android
// Container.  Memory charging fails when the limit would be exceeded —
// the same semantics as memcg's hard limit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace rattrap::container {

class Cgroup {
 public:
  Cgroup(std::string name, std::uint32_t cpu_shares,
         std::uint64_t memory_limit);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t cpu_shares() const { return cpu_shares_; }
  [[nodiscard]] std::uint64_t memory_limit() const { return memory_limit_; }
  [[nodiscard]] std::uint64_t memory_usage() const { return memory_usage_; }
  [[nodiscard]] std::uint64_t memory_peak() const { return memory_peak_; }

  void set_cpu_shares(std::uint32_t shares) { cpu_shares_ = shares; }
  void set_memory_limit(std::uint64_t limit) { memory_limit_ = limit; }

  /// Charges memory; returns false (and charges nothing) past the limit.
  bool charge_memory(std::uint64_t bytes);

  /// Releases memory (clamped at zero).
  void uncharge_memory(std::uint64_t bytes);

  /// Accumulates consumed CPU time.
  void charge_cpu(sim::SimDuration time) { cpu_time_ += time; }
  [[nodiscard]] sim::SimDuration cpu_time() const { return cpu_time_; }

 private:
  std::string name_;
  std::uint32_t cpu_shares_;
  std::uint64_t memory_limit_;
  std::uint64_t memory_usage_ = 0;
  std::uint64_t memory_peak_ = 0;
  sim::SimDuration cpu_time_ = 0;
};

/// Flat hierarchy (one level under the root, as LXC uses it).
class CgroupHierarchy {
 public:
  /// Creates a cgroup; returns nullptr when the name exists.
  Cgroup* create(const std::string& name, std::uint32_t cpu_shares,
                 std::uint64_t memory_limit);

  [[nodiscard]] Cgroup* find(std::string_view name) const;

  /// Removes a cgroup; returns false when absent.
  bool destroy(std::string_view name);

  [[nodiscard]] std::size_t count() const { return groups_.size(); }

  /// Sum of memory usage across all groups.
  [[nodiscard]] std::uint64_t total_memory_usage() const;

  /// Sum of cpu shares across all groups (proportional-share denominator).
  [[nodiscard]] std::uint64_t total_cpu_shares() const;

 private:
  std::map<std::string, std::unique_ptr<Cgroup>, std::less<>> groups_;
};

}  // namespace rattrap::container
