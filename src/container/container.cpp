#include "container/container.hpp"

#include <cassert>

namespace rattrap::container {

namespace {
// Calibrated lifecycle costs: clone+setns ~ 1 ms per namespace, veth pair
// ~ 3 ms, union mount ~ 4 ms, cgroup attach ~ 1 ms.
constexpr sim::SimDuration kNamespaceCost = sim::kMillisecond;
constexpr std::size_t kNamespaceKinds = 5;
constexpr sim::SimDuration kVethCost = 3 * sim::kMillisecond;
constexpr sim::SimDuration kUnionMountCost = 4 * sim::kMillisecond;
constexpr sim::SimDuration kCgroupCost = sim::kMillisecond;
constexpr sim::SimDuration kStopCost = 8 * sim::kMillisecond;
// Base kernel-side memory of an empty container (page tables, structs).
constexpr std::uint64_t kBaseMemory = 4ull * 1024 * 1024;
}  // namespace

const char* to_string(ContainerState state) {
  switch (state) {
    case ContainerState::kCreated:
      return "created";
    case ContainerState::kRunning:
      return "running";
    case ContainerState::kStopped:
      return "stopped";
    case ContainerState::kDestroyed:
      return "destroyed";
  }
  return "?";
}

Container::Container(ContainerId id, ContainerConfig config,
                     kernel::HostKernel& k)
    : id_(id), config_(std::move(config)), kernel_(k) {}

Container::~Container() {
  if (state_ == ContainerState::kRunning) stop();
}

std::optional<sim::SimDuration> Container::start(Cgroup& cgroup) {
  if (state_ != ContainerState::kCreated &&
      state_ != ContainerState::kStopped) {
    return std::nullopt;
  }
  for (const auto& feature : config_.required_features) {
    if (!kernel_.has_feature(feature)) return std::nullopt;
  }
  if (!cgroup.charge_memory(kBaseMemory)) return std::nullopt;

  cgroup_ = &cgroup;
  base_memory_ = kBaseMemory;
  rootfs_ = std::make_unique<fs::UnionFs>(config_.name + "-rootfs",
                                          config_.lower_layers);
  namespaces_ = NamespaceSet{};
  namespaces_.mnt.root = nullptr;  // the unique_ptr above is authoritative
  namespaces_.net.veth_host = "veth-" + config_.name;
  namespaces_.net.address = "10.0." + std::to_string(id_ % 250) + ".2";
  namespaces_.uts.hostname = config_.name;
  namespaces_.ipc.id = id_;
  devns_ = kernel_.device_namespaces().create();
  if (!kernel_.device_namespaces().alive(devns_)) {
    // The device namespace was torn down under us (injected teardown
    // race): roll back and fail the start instead of running with dead
    // pseudo devices.
    devns_ = kernel::kHostDevNs;
    rootfs_.reset();
    cgroup.uncharge_memory(base_memory_);
    base_memory_ = 0;
    cgroup_ = nullptr;
    return std::nullopt;
  }

  state_ = ContainerState::kRunning;
  return kNamespaceKinds * kNamespaceCost + kVethCost + kUnionMountCost +
         kCgroupCost;
}

sim::SimDuration Container::stop() {
  if (state_ != ContainerState::kRunning) return 0;
  if (namespaces_.pid.count() > 0) namespaces_.pid.kill(1);
  kernel_.device_namespaces().destroy(devns_);
  devns_ = kernel::kHostDevNs;
  if (cgroup_ != nullptr) {
    cgroup_->uncharge_memory(base_memory_);
    base_memory_ = 0;
  }
  state_ = ContainerState::kStopped;
  return kStopCost;
}

void Container::destroy() {
  assert(state_ != ContainerState::kRunning && "stop before destroy");
  rootfs_.reset();
  state_ = ContainerState::kDestroyed;
}

std::uint64_t Container::private_disk_bytes() const {
  return rootfs_ ? rootfs_->private_bytes() : 0;
}

bool Container::write_file(std::string_view path, std::uint64_t size,
                           sim::SimTime now) {
  if (rootfs_ == nullptr) return false;
  if (config_.disk_quota > 0) {
    std::uint64_t existing = 0;
    if (const fs::UnionHit hit = rootfs_->lookup(path);
        hit.node != nullptr && hit.layer_index == 0) {
      existing = hit.node->size;  // replacing a private file frees it
    }
    if (rootfs_->private_bytes() - existing + size > config_.disk_quota) {
      return false;
    }
  }
  rootfs_->write(path, size, now);
  return true;
}

}  // namespace rattrap::container
