// Container runtime: creates, tracks and reaps containers (the lxc-*
// command surface).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "container/cgroup.hpp"
#include "container/container.hpp"
#include "kernel/kernel.hpp"

namespace rattrap::container {

class ContainerRuntime {
 public:
  explicit ContainerRuntime(kernel::HostKernel& kernel) : kernel_(kernel) {}

  /// Creates a container in the kCreated state.
  Container& create(ContainerConfig config);

  /// Starts a container by id; allocates its cgroup from the hierarchy.
  /// Returns the simulated start cost or std::nullopt on failure.
  std::optional<sim::SimDuration> start(ContainerId id);

  /// Stops a running container. Returns the cost (0 when not running).
  sim::SimDuration stop(ContainerId id);

  /// Crash-kills a running container (SIGKILL to init / OOM-kill): no
  /// graceful shutdown cost, but namespaces, devices and memory charges
  /// are reaped exactly as a clean stop reaps them — the kernel does that
  /// regardless of how the processes died. Returns false when the
  /// container is absent or not running.
  bool crash(ContainerId id);

  /// Containers crash-killed so far (fault-injection accounting).
  [[nodiscard]] std::uint64_t crash_count() const { return crashes_; }

  /// Stops if needed, then destroys and removes the container.
  bool destroy(ContainerId id);

  [[nodiscard]] Container* find(ContainerId id) const;
  [[nodiscard]] std::size_t count() const { return containers_.size(); }
  [[nodiscard]] std::size_t running_count() const;
  [[nodiscard]] std::vector<ContainerId> ids() const;

  [[nodiscard]] CgroupHierarchy& cgroups() { return cgroups_; }
  [[nodiscard]] kernel::HostKernel& kernel() { return kernel_; }

 private:
  kernel::HostKernel& kernel_;
  CgroupHierarchy cgroups_;
  std::map<ContainerId, std::unique_ptr<Container>> containers_;
  ContainerId next_id_ = 1;
  std::uint64_t crashes_ = 0;
};

}  // namespace rattrap::container
