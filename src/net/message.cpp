#include "net/message.hpp"

namespace rattrap::net {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kControl:
      return "control";
    case MessageType::kMobileCode:
      return "mobile-code";
    case MessageType::kFileParams:
      return "file-params";
    case MessageType::kResult:
      return "result";
    case MessageType::kReject:
      return "reject";
  }
  return "?";
}

}  // namespace rattrap::net
