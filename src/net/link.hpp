// Network link models for the four mobile scenarios of §VI-A.
//
//   LAN WiFi — same LAN as the server, stable and fast.
//   WAN WiFi — ~60 ms latency via public IP, stable.
//   3G       — unstable, high latency, 0.38 Mbps up / 0.09 Mbps down.
//   4G       — 48.97 Mbps up / 7.64 Mbps down, less stable than WiFi.
//
// "Up" is device → cloud (offload uploads), "down" is cloud → device.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rattrap::net {

struct LinkConfig {
  std::string name;
  double up_mbps = 1.0;        ///< device → cloud bandwidth
  double down_mbps = 1.0;      ///< cloud → device bandwidth
  sim::SimDuration rtt = 0;    ///< mean round-trip time
  double jitter_sigma = 0.0;   ///< lognormal sigma on one-way latency
  double loss = 0.0;           ///< packet loss probability
};

/// Scenario presets with the paper's measured parameters.
[[nodiscard]] LinkConfig lan_wifi();
[[nodiscard]] LinkConfig wan_wifi();
[[nodiscard]] LinkConfig cellular_3g();
[[nodiscard]] LinkConfig cellular_4g();

/// All four presets, in the order the paper's Fig. 10 charts them.
[[nodiscard]] const std::vector<LinkConfig>& all_scenarios();

class Link {
 public:
  explicit Link(LinkConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const LinkConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

  /// Swaps the radio under the live link — a device handoff (WiFi↔3G/4G
  /// mid-session).  Transfers already in flight keep their sampled
  /// durations; every subsequent latency/bandwidth sample uses the new
  /// radio's parameters.  Connections hold a reference to this Link, so
  /// the swap is visible to all of them at once.
  void set_config(LinkConfig config) { config_ = std::move(config); }

  /// Attaches a fault injector: transfers then consult it for latency
  /// spikes (kNetDelay) and corruption-forced retransmissions
  /// (kNetCorrupt). nullptr detaches (clean path).
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  /// Attaches a metrics registry: transfers count into net.up.* /
  /// net.down.* and fault perturbations into net.fault.*
  /// (docs/OBSERVABILITY.md). nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Transfers retransmitted due to injected corruption.
  [[nodiscard]] std::uint64_t corrupted_transfers() const {
    return corrupted_;
  }
  /// Transfers hit by an injected latency spike.
  [[nodiscard]] std::uint64_t delayed_transfers() const { return delayed_; }

  /// One-way latency sample (jittered half-RTT).
  [[nodiscard]] sim::SimDuration latency(sim::Rng& rng) const;

  /// TCP-style connection establishment: SYN / SYN-ACK / ACK ≈ 1.5 RTT,
  /// with loss-induced SYN retransmission (3 s timeout) when unlucky.
  [[nodiscard]] sim::SimDuration connect_time(sim::Rng& rng) const;

  /// Duration of transferring `bytes` device → cloud.
  [[nodiscard]] sim::SimDuration upload_time(std::uint64_t bytes,
                                             sim::Rng& rng) const;

  /// Duration of transferring `bytes` cloud → device.
  [[nodiscard]] sim::SimDuration download_time(std::uint64_t bytes,
                                               sim::Rng& rng) const;

 private:
  [[nodiscard]] sim::SimDuration transfer_time(std::uint64_t bytes,
                                               double mbps,
                                               sim::Rng& rng) const;
  LinkConfig config_;
  sim::FaultInjector* faults_ = nullptr;
  mutable std::uint64_t corrupted_ = 0;
  mutable std::uint64_t delayed_ = 0;
  // Cached instrument handles (stable for the registry's lifetime);
  // transfers are const, hence mutable.
  mutable obs::Counter* up_transfers_ = nullptr;
  mutable obs::Counter* up_bytes_ = nullptr;
  mutable obs::Counter* down_transfers_ = nullptr;
  mutable obs::Counter* down_bytes_ = nullptr;
  mutable obs::Counter* fault_corrupted_ = nullptr;
  mutable obs::Counter* fault_delayed_ = nullptr;
};

}  // namespace rattrap::net
