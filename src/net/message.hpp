// Offloading protocol messages.
//
// Fig. 3 of the paper decomposes migrated data into three classes: the
// mobile code itself (app files pushed for execution), files and
// parameters specifying the task, and control messages managing the
// offloading procedure.  Results flowing back are accounted separately.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace rattrap::net {

enum class MessageType : std::uint8_t {
  kControl = 0,     ///< session management, offload decisions, acks
  kMobileCode = 1,  ///< app (APK/dex) files to execute
  kFileParams = 2,  ///< input files and method parameters
  kResult = 3,      ///< computation results (downstream)
  kReject = 4,      ///< typed admission/recovery rejection (downstream)
};

inline constexpr std::size_t kMessageTypeCount = 5;

/// Wire size of a reject reply: a control-sized frame carrying the
/// RejectReason code, so shed load still costs the device one small
/// downlink message instead of a silent timeout.
inline constexpr std::uint64_t kRejectReplyBytes = 32;

[[nodiscard]] const char* to_string(MessageType type);

struct Message {
  MessageType type = MessageType::kControl;
  std::uint64_t bytes = 0;
  std::string app_id;  ///< owning application (for cache bookkeeping)
};

/// Byte counters per message class and direction.
struct TrafficAccount {
  std::array<std::uint64_t, kMessageTypeCount> up{};    ///< device → cloud
  std::array<std::uint64_t, kMessageTypeCount> down{};  ///< cloud → device

  void record_up(MessageType type, std::uint64_t bytes) {
    up[static_cast<std::size_t>(type)] += bytes;
  }
  void record_down(MessageType type, std::uint64_t bytes) {
    down[static_cast<std::size_t>(type)] += bytes;
  }
  [[nodiscard]] std::uint64_t up_bytes(MessageType type) const {
    return up[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t down_bytes(MessageType type) const {
    return down[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t total_up() const {
    std::uint64_t sum = 0;
    for (const auto b : up) sum += b;
    return sum;
  }
  [[nodiscard]] std::uint64_t total_down() const {
    std::uint64_t sum = 0;
    for (const auto b : down) sum += b;
    return sum;
  }

  void merge(const TrafficAccount& other) {
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      up[i] += other.up[i];
      down[i] += other.down[i];
    }
  }
};

}  // namespace rattrap::net
