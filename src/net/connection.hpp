// A device ↔ cloud connection over one link.
//
// Connections sample their timing from the link model and keep per-class
// traffic accounts, which the Fig. 3 / Table II benches aggregate.
#pragma once

#include <cstdint>

#include "net/link.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rattrap::net {

class Connection {
 public:
  Connection(const Link& link, sim::Rng rng)
      : link_(link), rng_(std::move(rng)) {}

  /// Samples connection establishment (TCP handshake) duration.
  sim::SimDuration establish();

  [[nodiscard]] bool established() const { return established_; }

  /// Uploads a message (device → cloud); returns the sampled duration.
  /// Requires an established connection.
  sim::SimDuration upload(const Message& message);

  /// Downloads a message (cloud → device).
  sim::SimDuration download(const Message& message);

  /// Closes the connection (subsequent transfers require re-establish).
  void close() { established_ = false; }

  [[nodiscard]] const TrafficAccount& traffic() const { return traffic_; }
  [[nodiscard]] const Link& link() const { return link_; }

  /// Attaches a metrics registry: handshakes count into net.connects and
  /// per-message traffic into net.messages.* . nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  const Link& link_;
  sim::Rng rng_;
  TrafficAccount traffic_;
  bool established_ = false;
  obs::Counter* connects_ = nullptr;
  obs::Counter* messages_up_ = nullptr;
  obs::Counter* messages_down_ = nullptr;
};

}  // namespace rattrap::net
