#include "net/link.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace rattrap::net {

LinkConfig lan_wifi() {
  return LinkConfig{"LAN", 60.0, 60.0, sim::from_millis(3.0), 0.05, 0.0005};
}

LinkConfig wan_wifi() {
  return LinkConfig{"WAN", 20.0, 20.0, sim::from_millis(60.0), 0.08, 0.002};
}

LinkConfig cellular_3g() {
  // The paper measures 0.38 Mbps upstream / 0.09 Mbps downstream.
  return LinkConfig{"3G", 0.38, 0.09, sim::from_millis(250.0), 0.35, 0.02};
}

LinkConfig cellular_4g() {
  // 48.97 Mbps upstream / 7.64 Mbps downstream; less stable than WiFi.
  return LinkConfig{"4G", 48.97, 7.64, sim::from_millis(45.0), 0.20, 0.008};
}

const std::vector<LinkConfig>& all_scenarios() {
  static const std::vector<LinkConfig> scenarios = {
      lan_wifi(), wan_wifi(), cellular_4g(), cellular_3g()};
  return scenarios;
}

void Link::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    up_transfers_ = up_bytes_ = down_transfers_ = down_bytes_ = nullptr;
    fault_corrupted_ = fault_delayed_ = nullptr;
    return;
  }
  up_transfers_ = &metrics->counter("net.up.transfers");
  up_bytes_ = &metrics->counter("net.up.bytes");
  down_transfers_ = &metrics->counter("net.down.transfers");
  down_bytes_ = &metrics->counter("net.down.bytes");
  fault_corrupted_ = &metrics->counter("net.fault.corrupted");
  fault_delayed_ = &metrics->counter("net.fault.delayed");
}

sim::SimDuration Link::latency(sim::Rng& rng) const {
  const double base = static_cast<double>(config_.rtt) / 2.0;
  const double jitter =
      config_.jitter_sigma > 0.0
          ? rng.lognormal(0.0, config_.jitter_sigma)
          : 1.0;
  return static_cast<sim::SimDuration>(base * jitter);
}

sim::SimDuration Link::connect_time(sim::Rng& rng) const {
  sim::SimDuration total = latency(rng) * 3;  // SYN, SYN-ACK, ACK
  // A lost SYN costs the initial RTO (3 s, RFC 6298 initial value).
  while (rng.bernoulli(config_.loss)) {
    total += 3 * sim::kSecond;
  }
  return total;
}

sim::SimDuration Link::transfer_time(std::uint64_t bytes, double mbps,
                                     sim::Rng& rng) const {
  assert(mbps > 0);
  // Effective goodput degrades with loss (Mathis-style back-off simplified
  // to a linear factor; loss rates here are small).
  const double goodput_mbps = mbps * (1.0 - 4.0 * config_.loss);
  const double seconds =
      static_cast<double>(bytes) * 8.0 / (goodput_mbps * 1e6);
  sim::SimDuration total = sim::from_seconds(seconds) + latency(rng);
  if (faults_ != nullptr) {
    if (faults_->should_fire(sim::FaultKind::kNetCorrupt)) {
      // Checksum failure at the receiver: the whole transfer is resent.
      ++corrupted_;
      if (fault_corrupted_ != nullptr) fault_corrupted_->inc();
      total += sim::from_seconds(seconds) + latency(rng);
    }
    if (faults_->should_fire(sim::FaultKind::kNetDelay)) {
      // Latency spike (bufferbloat / radio handover): one-off stall.
      ++delayed_;
      if (fault_delayed_ != nullptr) fault_delayed_->inc();
      total += faults_->delay_of(sim::FaultKind::kNetDelay);
    }
  }
  return total;
}

sim::SimDuration Link::upload_time(std::uint64_t bytes,
                                   sim::Rng& rng) const {
  if (up_transfers_ != nullptr) {
    up_transfers_->inc();
    up_bytes_->inc(bytes);
  }
  return transfer_time(bytes, config_.up_mbps, rng);
}

sim::SimDuration Link::download_time(std::uint64_t bytes,
                                     sim::Rng& rng) const {
  if (down_transfers_ != nullptr) {
    down_transfers_->inc();
    down_bytes_->inc(bytes);
  }
  return transfer_time(bytes, config_.down_mbps, rng);
}

}  // namespace rattrap::net
