#include "net/connection.hpp"

#include <cassert>

namespace rattrap::net {

sim::SimDuration Connection::establish() {
  const sim::SimDuration t = link_.connect_time(rng_);
  established_ = true;
  return t;
}

sim::SimDuration Connection::upload(const Message& message) {
  assert(established_ && "upload on unestablished connection");
  traffic_.record_up(message.type, message.bytes);
  return link_.upload_time(message.bytes, rng_);
}

sim::SimDuration Connection::download(const Message& message) {
  assert(established_ && "download on unestablished connection");
  traffic_.record_down(message.type, message.bytes);
  return link_.download_time(message.bytes, rng_);
}

}  // namespace rattrap::net
