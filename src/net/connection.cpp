#include "net/connection.hpp"

#include <cassert>

namespace rattrap::net {

void Connection::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    connects_ = messages_up_ = messages_down_ = nullptr;
    return;
  }
  connects_ = &metrics->counter("net.connects");
  messages_up_ = &metrics->counter("net.messages.up");
  messages_down_ = &metrics->counter("net.messages.down");
}

sim::SimDuration Connection::establish() {
  const sim::SimDuration t = link_.connect_time(rng_);
  established_ = true;
  if (connects_ != nullptr) connects_->inc();
  return t;
}

sim::SimDuration Connection::upload(const Message& message) {
  assert(established_ && "upload on unestablished connection");
  traffic_.record_up(message.type, message.bytes);
  if (messages_up_ != nullptr) messages_up_->inc();
  return link_.upload_time(message.bytes, rng_);
}

sim::SimDuration Connection::download(const Message& message) {
  assert(established_ && "download on unestablished connection");
  traffic_.record_down(message.type, message.bytes);
  if (messages_down_ != nullptr) messages_down_->inc();
  return link_.download_time(message.bytes, rng_);
}

}  // namespace rattrap::net
