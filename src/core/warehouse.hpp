// App Warehouse and the mobile code cache (§IV-D, Fig. 8).
//
// The first offloading request of an application uploads its code, once
// and for all.  The warehouse preserves the code and maintains a cache
// table: Reference → AID (application id) → the containers (CIDs) that
// have already executed this app.  Subsequent requests carry only the
// Reference; on HIT the cloud fetches the code locally and the Dispatcher
// prefers a container where the code is already loaded.
//
// The cache table is on the dispatch hot path (one lookup per request),
// so entries live in a slot deque indexed by a flat hash map
// (sim/flat_hash.hpp) with transparent string_view lookup — no per-lookup
// allocation, no tree walk.  Freed slots are recycled LIFO; entry
// addresses are stable while the entry is live.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "sim/flat_hash.hpp"

namespace rattrap::core {

using Aid = std::uint32_t;          ///< application id in the cache table
using EnvId = std::uint32_t;        ///< runtime-environment id (CID/VM id)

struct CacheEntry {
  Aid aid = 0;
  std::string reference;            ///< client-visible code reference
  std::uint64_t code_bytes = 0;
  std::set<EnvId> containers;       ///< CIDs holding the loaded code
  std::uint64_t hits = 0;
  std::uint64_t last_use_seq = 0;   ///< LRU clock
};

class AppWarehouse {
 public:
  /// `capacity_bytes` bounds stored code; 0 = unbounded. Eviction is LRU.
  explicit AppWarehouse(std::uint64_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  /// Cache-table lookup: HIT when the code for `reference` is preserved.
  [[nodiscard]] bool hit(std::string_view reference) const {
    return index_.contains(reference);
  }

  /// Records an upload of `code_bytes` for `reference`; returns its AID.
  /// Re-uploading refreshes the stored size.
  Aid store(std::string_view reference, std::uint64_t code_bytes);

  /// Marks an execution of `reference`'s code in environment `env`.
  void record_execution(std::string_view reference, EnvId env);

  /// The environment the Dispatcher should prefer (one that already
  /// loaded this code), or nullopt on MISS/none.
  [[nodiscard]] std::optional<EnvId> preferred_env(
      std::string_view reference) const;

  /// Drops every mapping to `env` (the container was destroyed).
  void forget_env(EnvId env);

  [[nodiscard]] const CacheEntry* find(std::string_view reference) const;
  [[nodiscard]] std::size_t entry_count() const { return index_.size(); }
  [[nodiscard]] std::uint64_t stored_bytes() const { return stored_; }
  [[nodiscard]] std::uint64_t hit_count() const { return hit_total_; }
  [[nodiscard]] std::uint64_t miss_count() const { return miss_total_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Lookup that also updates hit/miss statistics (what the Dispatcher
  /// calls on each request).
  bool lookup(std::string_view reference);

  /// Attaches a fault injector: lookups consult kCacheEvict and, when it
  /// fires against a present entry, evict that entry *before* answering —
  /// the race where eviction lands between the Dispatcher's decision and
  /// the container's fetch. nullptr detaches.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  /// Entries evicted by injected races (subset of evictions()).
  [[nodiscard]] std::uint64_t injected_evictions() const {
    return injected_evictions_;
  }

  /// Attaches a metrics registry: lookups count into warehouse.hits /
  /// warehouse.misses, evictions into warehouse.evictions, and
  /// warehouse.stored_bytes tracks the cache footprint. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Visits every live cache entry (deterministic slot order), for
  /// cross-component invariant checks — AID→CID mappings must only
  /// reference live containers.  Entries carry their own `reference`.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.live) fn(slot.entry);
    }
  }

 private:
  struct Slot {
    CacheEntry entry;
    bool live = false;
  };

  CacheEntry* lookup_slot(std::string_view reference);
  void erase_entry(std::uint32_t slot);
  void evict_lru();

  std::deque<Slot> slots_;               ///< stable entry storage
  std::vector<std::uint32_t> free_;      ///< recycled slots (LIFO)
  sim::FlatHashMap<std::string, std::uint32_t> index_;  ///< ref → slot
  std::uint64_t capacity_;
  std::uint64_t stored_ = 0;
  Aid next_aid_ = 1;
  std::uint64_t seq_ = 0;
  std::uint64_t hit_total_ = 0;
  std::uint64_t miss_total_ = 0;
  std::uint64_t evictions_ = 0;
  sim::FaultInjector* faults_ = nullptr;
  std::uint64_t injected_evictions_ = 0;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Gauge* metric_stored_bytes_ = nullptr;
};

}  // namespace rattrap::core
