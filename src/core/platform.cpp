#include "core/platform.hpp"

#include <algorithm>
#include <cassert>

#include "android/image_profile.hpp"

namespace rattrap::core {

const char* to_string(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kVmCloud:
      return "VM";
    case PlatformKind::kRattrapWithoutOpt:
      return "Rattrap(W/O)";
    case PlatformKind::kRattrap:
      return "Rattrap";
  }
  return "?";
}

PlatformConfig make_config(PlatformKind kind, net::LinkConfig link,
                           std::uint64_t seed) {
  PlatformConfig config;
  config.kind = kind;
  config.link = std::move(link);
  config.seed = seed;
  switch (kind) {
    case PlatformKind::kVmCloud:
      config.container_backing = false;
      config.customized_os = false;
      config.shared_resource_layer = false;
      config.sharing_offload_io = false;
      config.code_cache = false;
      config.dispatcher_affinity = false;
      break;
    case PlatformKind::kRattrapWithoutOpt:
      config.container_backing = true;
      config.customized_os = false;
      config.shared_resource_layer = false;
      config.sharing_offload_io = false;
      config.code_cache = false;
      config.dispatcher_affinity = false;
      break;
    case PlatformKind::kRattrap:
      break;  // all defaults on
  }
  return config;
}

// ---------------------------------------------------------------------
// Internal state

struct Platform::Env {
  std::uint32_t id = 0;
  bool is_vm = false;
  vm::VmId vm_id = 0;
  std::unique_ptr<CloudAndroidContainer> cac;
  android::ClassLoader vm_loader;  ///< for VM-backed environments
  bool ready = false;
  sim::SimTime provision_start = 0;
  sim::SimTime ready_at = 0;
  sim::SimTime busy_until = 0;
  std::vector<std::function<void()>> waiters;
  /// Apps whose code this specific environment has received (the per-VM
  /// duplicate-code bookkeeping of §III-D).
  std::set<std::string> pushed_apps;
  std::uint64_t disk_bytes = 0;
  std::string binding_key;
  bool retired = false;
  std::uint32_t inflight = 0;       ///< sessions bound but not completed
  std::uint64_t jobs_served = 0;    ///< reclaim-epoch counter
  bool pool = false;                ///< pre-booted, waiting for a claimant
  bool draining = false;            ///< no new leases; reclaim when idle
  bool failed = false;              ///< provisioning failed (capacity)
  bool crashed = false;             ///< died abruptly (fault injection)
  std::uint64_t memory_bytes = 0;   ///< committed allocation
  sim::SimTime commit_start = 0;
  sim::SimTime commit_end = -1;     ///< -1 while still committed
};

struct Platform::SessionState {
  workloads::OffloadRequest request;
  std::string app_id;
  std::uint64_t apk_bytes = 0;
  workloads::Kind kind = workloads::Kind::kLinpack;
  workloads::TaskResult executed;  ///< real kernel execution
  std::unique_ptr<net::Connection> conn;
  PhaseBreakdown phases;
  sim::SimTime connected_at = 0;
  sim::SimDuration upload_time = 0;
  sim::SimDuration download_time = 0;
  bool cache_hit = false;
  bool spilled_to_disk = false;  ///< tmpfs full: files staged on disk
  Env* env = nullptr;

  // Fault-injection state. Scheduled continuations capture `epoch` and
  // bail when it moved on — a crash invalidates every event the session
  // had in flight without having to cancel them individually.
  std::uint64_t epoch = 0;
  std::uint32_t dispatch_attempts = 0;
  std::uint32_t connect_attempts = 0;
  bool recovered = false;   ///< survived at least one environment crash
  bool resumed = false;     ///< stalled through a handoff outage
  bool staged = false;      ///< files currently staged in the shared tmpfs
  bool computing = false;   ///< holds a Monitor job slot
  bool done = false;        ///< outcome recorded (completed or rejected)

  // Access-control state (docs/RAC.md).
  bool rac_slot = false;    ///< holds a RAC in-flight quota slot

  // Admission-control state (docs/LOADGEN.md).
  bool admitted = false;    ///< holds an in-service slot
  bool queued = false;      ///< waiting in the bounded accept queue
  sim::SimTime enqueued_at = 0;
  sim::SimDuration queue_wait = 0;
  sim::SimDuration pending_lead = 0;  ///< dispatch lead cost when popped

  // QoS identity, inherited from the owning Session (docs/QOS.md).
  std::uint64_t stream_id = 0;
  std::string tenant;       ///< resolved: stream tenant, or app id
  qos::PriorityClass klass = qos::PriorityClass::kStandard;
  sim::SimDuration deadline = 0;
  std::uint64_t drr_deficit = 0;  ///< tenant deficit after the queue pop

  // Observability state (docs/OBSERVABILITY.md). Spans live on track
  // `request.sequence + 1`; track 0 is the platform itself.
  obs::SpanId span_session = obs::kNoSpan;  ///< root "session" span
  obs::SpanId span_phase = obs::kNoSpan;    ///< current phase span
  bool fresh_env = false;  ///< bound to an env that still had to boot
  std::map<sim::FaultKind, std::uint64_t> fault_hits;
};

/// Track 0 carries platform-wide instants (faults outside any session).
constexpr std::uint64_t kPlatformTrack = 0;

/// Lifecycle-state spans live on one track per environment, far above
/// any session's (session tracks are sequence + 1).
constexpr std::uint64_t kLifecycleTrackBase = 1'000'000'000;

namespace {
/// Affinity-reroute backlog tolerance by class: interactive sessions give
/// up the code-cache reroute sooner than batch, which will happily wait
/// behind a longer queue to save the code push (docs/QOS.md).  Standard
/// keeps the pre-QoS 600 ms default.
sim::SimDuration class_backlog_threshold(qos::PriorityClass klass) {
  switch (klass) {
    case qos::PriorityClass::kInteractive:
      return sim::from_millis(300);
    case qos::PriorityClass::kStandard:
      return sim::from_millis(600);
    case qos::PriorityClass::kBatch:
      return sim::from_millis(1200);
  }
  return sim::from_millis(600);
}
}  // namespace

// Marks the session a handler (and everything it synchronously calls
// into — link, tmpfs, warehouse, kernel) acts for, so a fault fired deep
// inside a component annotates the right span. Scopes nest because
// handlers invoke each other directly.
struct Platform::SessionScope {
  SessionScope(Platform& platform, SessionState& session)
      : platform_(platform),
        prev_session_(platform.active_session_),
        prev_span_(platform.trace_.active()) {
    platform_.active_session_ = &session;
    platform_.trace_.set_active(session.span_phase != obs::kNoSpan
                                    ? session.span_phase
                                    : session.span_session);
  }
  ~SessionScope() {
    platform_.active_session_ = prev_session_;
    platform_.trace_.set_active(prev_span_);
  }
  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

 private:
  Platform& platform_;
  SessionState* prev_session_;
  obs::SpanId prev_span_;
};

void Platform::begin_phase(SessionState& s, const char* name) {
  if (!trace_.enabled()) return;
  if (s.span_phase != obs::kNoSpan) end_phase(s);
  s.span_phase = trace_.begin(s.request.sequence + 1, name, "phase",
                              server_->simulator().now());
  trace_.set_active(s.span_phase);
}

void Platform::end_phase(SessionState& s) {
  if (s.span_phase == obs::kNoSpan) return;
  trace_.end(s.span_phase, server_->simulator().now());
  s.span_phase = obs::kNoSpan;
}

void Platform::on_fault_fired(sim::FaultKind kind, sim::SimTime when) {
  metrics_.counter(std::string("faults.fired.") + sim::to_string(kind))
      .inc();
  if (!trace_.enabled()) return;
  const std::string name = std::string("fault:") + sim::to_string(kind);
  SessionState* s = active_session_;
  if (s != nullptr && !s->done) {
    const std::uint64_t hits = ++s->fault_hits[kind];
    const std::string key = std::string("fault.") + sim::to_string(kind);
    if (s->span_phase != obs::kNoSpan) {
      trace_.annotate(s->span_phase, key, hits);
    }
    if (s->span_session != obs::kNoSpan) {
      trace_.annotate(s->span_session, key, hits);
    }
    trace_.instant(s->request.sequence + 1, name, "fault", when);
  } else {
    // No session context (e.g. a pump-delivered container crash).
    trace_.instant(kPlatformTrack, name, "fault", when);
  }
}

// ---------------------------------------------------------------------

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  // Session records are pooled: one slab block fits the shared_ptr
  // control block plus the SessionState payload (64 bytes of headroom
  // covers the library's control-block layout; anything bigger falls
  // through to the heap and is counted, never lost).
  session_pool_ =
      std::make_unique<sim::SlabPool>(sizeof(SessionState) + 64);
  const auto system_layer = config_.customized_os
                                ? android::customized_layer()
                                : android::container_stock_layer();
  Calibration calibration =
      config_.calibration ? *config_.calibration : default_calibration();
  if (config_.tmpfs_capacity_override > 0) {
    calibration.tmpfs_capacity = config_.tmpfs_capacity_override;
  }
  server_ = std::make_unique<CloudServer>(calibration, system_layer);
  link_ = std::make_unique<net::Link>(config_.link);
  base_link_ = config_.link;
  dispatcher_ = std::make_unique<Dispatcher>(server_->env_db(),
                                             server_->warehouse(),
                                             config_.dispatcher_affinity);
  server_->install_metrics(&metrics_);
  link_->set_metrics(&metrics_);
  dispatcher_->set_metrics(&metrics_);
  // The access controller becomes a stateful defense layer (docs/RAC.md):
  // the block hook sweeps the offender's live sessions so a blocked
  // tenant consumes zero container time after block onset (invariant 14).
  server_->access().configure(config_.access);
  server_->access().on_block(
      [this](const std::string& tenant, sim::SimTime now) {
        on_tenant_blocked(tenant, now);
      });
  server_->access().on_unblock(
      [this](const std::string& tenant, sim::SimTime now) {
        if (!trace_.enabled()) return;
        const obs::SpanId mark =
            trace_.instant(kPlatformTrack, "rac_unblock", "rac", now);
        trace_.annotate(mark, "tenant", tenant);
      });
  if (config_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(
        config_.admission, server_->monitor(), calibration.server_cores);
    admission_->set_metrics(&metrics_);
  }
  if (config_.elastic.mode != elastic::PoolMode::kDisabled) {
    pool_controller_ =
        std::make_unique<elastic::PoolController>(config_.elastic);
  }
  // Lifecycle transitions feed the elastic.* metrics schema and, when
  // tracing is on, one state span per environment (docs/ELASTIC.md).
  lifecycle_.set_transition_hook(
      [this](std::uint32_t cid, elastic::CacState from, elastic::CacState to,
             sim::SimTime now) {
        metrics_
            .counter(std::string("elastic.transitions.") +
                     elastic::to_string(to))
            .inc();
        metrics_.gauge(std::string("elastic.state.") + elastic::to_string(to))
            .set(static_cast<double>(lifecycle_.count(to)));
        if (from != elastic::CacState::kCold) {
          metrics_
              .gauge(std::string("elastic.state.") + elastic::to_string(from))
              .set(static_cast<double>(lifecycle_.count(from)));
        }
        if (!trace_.enabled()) return;
        if (const auto it = lifecycle_spans_.find(cid);
            it != lifecycle_spans_.end()) {
          trace_.end(it->second, now);  // no-op if a drain already closed it
          lifecycle_spans_.erase(it);
        }
        const std::uint64_t track = kLifecycleTrackBase + cid;
        if (to == elastic::CacState::kReclaimed) {
          trace_.instant(track, "reclaimed", "lifecycle", now);
          return;
        }
        lifecycle_spans_.emplace(
            cid,
            trace_.begin(track, elastic::to_string(to), "lifecycle", now));
      });
  if (config_.force_invariants && config_.check_invariants &&
      config_.fault_plan.empty()) {
    // The property battery wants the oracle active on fault-free runs
    // too; with a fault plan installed the block below wires it instead.
    register_invariants();
    server_->simulator().set_post_event_hook(
        [this]() { invariants_.run(server_->simulator().now()); });
  }
  if (!config_.fault_plan.empty()) {
    faults_ = std::make_unique<sim::FaultInjector>(config_.fault_plan,
                                                   config_.seed);
    faults_->set_clock(
        [this]() { return server_->simulator().now(); });
    link_->set_fault_injector(faults_.get());
    server_->install_fault_injector(faults_.get());
    faults_->set_fire_observer(
        [this](sim::FaultKind kind, sim::SimTime when) {
          on_fault_fired(kind, when);
        });
    server_->monitor().set_detection_latency(
        config_.crash_detection_latency);
    server_->monitor().set_crash_handler(
        [this](std::uint32_t env_id) { recover_env(env_id); });
    if (config_.check_invariants) {
      register_invariants();
      server_->simulator().set_post_event_hook(
          [this]() { invariants_.run(server_->simulator().now()); });
    }
  }
}

Platform::~Platform() = default;

device::RadioProfile Platform::radio_profile() const {
  if (config_.link.name == "3G") return device::radio_3g();
  if (config_.link.name == "4G") return device::radio_4g();
  return device::wifi_radio();
}

const android::MobileApp& Platform::app_for(workloads::Kind kind) {
  const auto workload = workloads::make_workload(kind);
  const std::string app_id = workload->app().app_id;
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    it = apps_.emplace(app_id, android::MobileApp::for_workload(kind)).first;
  }
  return it->second;
}

const device::MobileDevice& Platform::device_for(std::uint32_t device_id) {
  while (devices_.size() <= device_id) {
    device::DeviceConfig dc;
    dc.id = static_cast<std::uint32_t>(devices_.size());
    devices_.emplace_back(dc);
  }
  return devices_[device_id];
}

double Platform::cpu_factor() const {
  const Calibration& cal = server_->calibration();
  return config_.container_backing ? cal.container_cpu_factor
                                   : cal.vm_cpu_factor;
}

sim::SimDuration Platform::compute_io_time(Env& env, std::uint64_t bytes,
                                           std::uint32_t ops) const {
  if (bytes == 0 && ops == 0) return 0;
  const Calibration& cal = server_->calibration();
  if (config_.sharing_offload_io) {
    // Sharing Offloading I/O: reads come from the shared tmpfs; a file
    // operation is a page-cache hit (~20 µs of VFS work).
    return server_->shared_layer().io_time(bytes) +
           static_cast<sim::SimDuration>(ops) * 20;
  }
  // Disk-backed offloading I/O: each discrete file operation pays a seek
  // (VirusScan's many small files are why it is the most I/O-bound
  // workload, §III-C), plus the streaming transfer.
  const sim::SimDuration per_op =
      sim::from_millis(cal.disk.avg_seek_ms + cal.disk.rotational_ms);
  const sim::SimDuration native =
      server_->disk().service_time(bytes, /*sequential=*/true) +
      static_cast<sim::SimDuration>(ops) * per_op;
  if (env.is_vm) {
    return static_cast<sim::SimDuration>(static_cast<double>(native) /
                                         cal.vm_io_factor);
  }
  return native;  // container: native disk I/O
}

// ---------------------------------------------------------------------
// Environment provisioning

Platform::Env& Platform::provision_env(const std::string& binding_key,
                                       sim::SimTime now) {
  const std::uint32_t id = next_env_id_++;
  auto env = std::make_unique<Env>();
  env->id = id;
  env->is_vm = !config_.container_backing;
  env->provision_start = now;
  env->binding_key = binding_key;
  Env& ref = *env;
  envs_.emplace(id, std::move(env));
  server_->env_db().add(id,
                        ref.is_vm ? EnvBacking::kVm : EnvBacking::kContainer,
                        binding_key, now);
  if (ref.is_vm) {
    provision_vm(ref);
  } else {
    provision_cac(ref);
  }
  lifecycle_.admit(id, now, ref.memory_bytes);
  if (ref.failed) {
    // Dead on arrival (capacity wall): straight to reclaimed.
    lifecycle_.transition(id, elastic::CacState::kReclaimed, now);
  }
  return ref;
}

void Platform::provision_vm(Env& env) {
  const Calibration& cal = server_->calibration();
  vm::VmConfig vc;
  vc.name = "android-vm-" + std::to_string(env.id);
  vc.vcpus = 1;
  vc.memory = cal.vm_memory;
  vc.disk_image = android::stock_layer()->total_bytes();
  vc.cpu_factor = cal.vm_cpu_factor;
  vc.io_factor = cal.vm_io_factor;
  vm::VirtualMachine* machine = server_->hypervisor().create(vc);
  if (machine == nullptr) {
    // Host memory exhausted: the environment cannot be provisioned. Every
    // waiting session is answered with a rejection — the density wall a
    // 512 MB-per-VM resource model hits on a 16 GB server.
    metrics_.counter("env.provision_failed").inc();
    env.failed = true;
    env.retired = true;
    server_->env_db().retire(env.id);
    server_->simulator().schedule_in(0, [this, &env]() {
      auto waiters = std::move(env.waiters);
      env.waiters.clear();
      for (auto& waiter : waiters) waiter();
    });
    return;
  }
  env.vm_id = machine->id();
  env.disk_bytes = vc.disk_image;
  env.memory_bytes = vc.memory;
  env.commit_start = server_->simulator().now();

  const sim::SimTime boot_start = server_->simulator().now();
  server_->hypervisor().boot(
      env.vm_id, android::vm_boot_plan(android::OsProfile::kStock),
      [this, &env, boot_start](sim::SimTime booted_at) {
        // Boot keeps roughly one guest vCPU busy end to end.
        server_->monitor().record_cpu(boot_start, booted_at, 0.85);
        server_->simulator().schedule_in(
            server_->calibration().env_register_cost,
            [this, &env]() { env_ready(env); });
      });
}

void Platform::provision_cac(Env& env) {
  CacConfig cc;
  cc.name = "cac-" + std::to_string(env.id);
  cc.profile = config_.customized_os ? android::OsProfile::kCustomized
                                     : android::OsProfile::kStock;
  if (config_.shared_resource_layer) {
    cc.lower_layers = {server_->shared_layer().system_layer()};
    // A later CAC finds the shared layer page-cached by the first boot.
    cc.warm_shared_layer = envs_.size() > 1;
  } else {
    // Private full image copy per container (the W/O configuration).
    cc.lower_layers = {config_.customized_os
                           ? android::customized_layer()
                           : android::container_stock_layer()};
    cc.warm_shared_layer = false;
  }
  cc.memory_limit = config_.customized_os
                        ? server_->calibration().cac_opt_memory
                        : server_->calibration().cac_plain_memory;
  // Pin the lower layers by content digest: deduplicated across every
  // CAC, and held here so the shared base outlives any one container's
  // drain (only the private top layer is reclaimed).
  for (const auto& layer : cc.lower_layers) {
    layer_store_.add(container::layer_digest(*layer), layer);
  }
  metrics_.gauge("elastic.layers.pinned_bytes")
      .set(static_cast<double>(layer_store_.stored_bytes()));
  env.cac = std::make_unique<CloudAndroidContainer>(
      cc, server_->containers(), server_->driver());
  env.memory_bytes = cc.memory_limit;
  env.commit_start = server_->simulator().now();

  const auto start_cost = env.cac->start_container(server_->kernel());
  if (!start_cost.has_value()) {
    // Container start failed — missing kernel feature, cgroup memory
    // limit, or an injected device-namespace teardown. Same answer as
    // the VM capacity wall: the environment is dead on arrival and
    // every waiting session gets a rejection.
    metrics_.counter("env.provision_failed").inc();
    env.failed = true;
    env.retired = true;
    env.memory_bytes = 0;
    env.commit_end = env.commit_start;
    server_->env_db().retire(env.id);
    server_->simulator().schedule_in(0, [this, &env]() {
      auto waiters = std::move(env.waiters);
      env.waiters.clear();
      for (auto& waiter : waiters) waiter();
    });
    return;
  }
  const android::UserspaceBoot boot = env.cac->userspace_boot();

  // Per-environment disk: a private image copy without the shared layer,
  // or just the COW delta (seeded at finish_boot) with it.
  env.disk_bytes = config_.shared_resource_layer
                       ? 0  // updated after finish_boot
                       : cc.lower_layers.front()->total_bytes();

  sim::Simulator& simulator = server_->simulator();
  const sim::SimTime cpu_start = simulator.now() + *start_cost;
  auto after_io = [this, &env, boot, cpu_start]() {
    sim::Simulator& simulator2 = server_->simulator();
    const sim::SimTime now = simulator2.now();
    const sim::SimTime cpu_done = now + boot.cpu_total();
    server_->monitor().record_cpu(std::max(cpu_start, now), cpu_done, 0.9);
    simulator2.schedule_at(cpu_done, [this, &env]() {
      env.cac->finish_boot(server_->simulator().now());
      if (config_.shared_resource_layer) {
        env.disk_bytes = env.cac->private_disk_bytes();
      }
      server_->simulator().schedule_in(
          server_->calibration().env_register_cost,
          [this, &env]() { env_ready(env); });
    });
  };

  simulator.schedule_at(cpu_start, [this, boot, after_io]() {
    if (boot.disk_read_bytes == 0) {
      after_io();
      return;
    }
    server_->disk().submit(fs::IoKind::kRead, boot.disk_read_bytes,
                           /*sequential=*/true, after_io);
  });
}

void Platform::env_ready(Env& env) {
  env.ready = true;
  env.ready_at = server_->simulator().now();
  env.busy_until = env.ready_at;
  metrics_.counter("env.provisioned").inc();
  metrics_.histogram("env.provision_ms")
      .observe(sim::to_millis(env.ready_at - env.provision_start));
  server_->monitor().env_up(env.id);
  if (pool_controller_ != nullptr) {
    pool_controller_->observe_boot(
        sim::to_seconds(env.ready_at - env.provision_start));
  }
  if (EnvRecord* record = server_->env_db().find(env.id)) {
    record->state = env.draining ? EnvState::kDraining : EnvState::kIdle;
    record->ready_at = env.ready_at;
  }
  if (!env.draining) {
    // A drain begun mid-boot already moved the ledger to kDraining.
    lifecycle_.transition(env.id,
                          env.inflight > 0 ? elastic::CacState::kLeased
                                           : elastic::CacState::kWarmIdle,
                          env.ready_at);
  }
  auto waiters = std::move(env.waiters);
  env.waiters.clear();
  for (auto& waiter : waiters) waiter();
  if (env.draining) {
    if (env.inflight == 0) finish_drain(env);
    return;
  }
  schedule_reclaim(env);
}

void Platform::schedule_reclaim(Env& env) {
  if (config_.env_idle_timeout <= 0) return;
  const std::uint64_t epoch = env.jobs_served;
  server_->simulator().schedule_in(
      config_.env_idle_timeout, [this, &env, epoch]() {
        if (env.retired || !env.ready) return;
        if (env.pool && env.jobs_served == 0) return;  // waiting warm
        if (env.jobs_served != epoch) return;  // work arrived since
        if (env.inflight > 0) return;          // sessions in progress
        if (env.busy_until > server_->simulator().now()) return;
        begin_drain(env);
      });
}

void Platform::retire_env(Env& env) {
  env.retired = true;
  env.ready = false;
  env.commit_end = server_->simulator().now();
  server_->monitor().env_down(env.id);
  lifecycle_.transition(env.id, elastic::CacState::kReclaimed,
                        server_->simulator().now());
  server_->env_db().retire(env.id);
  server_->warehouse().forget_env(env.id);
  if (env.is_vm) {
    server_->hypervisor().destroy(env.vm_id);
  } else if (env.cac) {
    env.cac->shutdown(server_->kernel());
  }
}

// ---------------------------------------------------------------------
// Elastic capacity machinery (docs/ELASTIC.md)

std::uint64_t Platform::session_pool_heap_fallbacks() const {
  return session_pool_->heap_fallbacks();
}

void Platform::begin_drain(Env& env) {
  if (env.draining || env.retired) return;
  env.draining = true;
  env.pool = false;  // never claimable again
  metrics_.counter("elastic.drained").inc();
  lifecycle_.transition(env.id, elastic::CacState::kDraining,
                        server_->simulator().now());
  // Unbind the affinity key so the dispatcher never routes new work
  // here; in-flight sessions keep their binding through s->env.
  env.binding_key = "drain:" + std::to_string(env.id);
  server_->env_db().rebind(env.id, env.binding_key);
  if (EnvRecord* record = server_->env_db().find(env.id)) {
    if (record->state != EnvState::kRetired) {
      record->state = EnvState::kDraining;
    }
  }
  if (env.ready && env.inflight == 0) finish_drain(env);
}

void Platform::finish_drain(Env& env) {
  if (env.retired) return;
  if (!env.is_vm && env.cac != nullptr) {
    // Reclaim the private COW layer; shared lower layers stay for the
    // environments still referencing them.
    const std::uint64_t freed = env.cac->reclaim_private_layer();
    if (freed > 0) {
      metrics_.counter("elastic.reclaimed.private_bytes").inc(freed);
    }
  }
  retire_env(env);
}

bool Platform::drain_env(std::uint32_t env_id) {
  const auto it = envs_.find(env_id);
  if (it == envs_.end()) return false;
  Env& env = *it->second;
  if (env.retired || env.draining) return false;
  begin_drain(env);
  return true;
}

Platform::Env& Platform::prewarm_env() {
  Env& env = provision_env("pool:" + std::to_string(pool_seq_++),
                           server_->simulator().now());
  env.pool = true;
  metrics_.counter("elastic.prewarmed").inc();
  return env;
}

std::uint64_t Platform::default_env_memory() const {
  const Calibration& cal = server_->calibration();
  if (!config_.container_backing) return cal.vm_memory;
  return config_.customized_os ? cal.cac_opt_memory : cal.cac_plain_memory;
}

std::uint32_t Platform::warm_idle_count() const {
  std::uint32_t n = 0;
  for (const auto& [id, env] : envs_) {
    (void)id;
    if (env->pool && !env->retired && !env->draining && env->ready &&
        env->inflight == 0) {
      ++n;
    }
  }
  return n;
}

std::uint32_t Platform::elastic_prewarm(std::uint32_t count) {
  if (count == 0) return 0;
  // Honor the memory budget against the whole pool pipeline (booting
  // included) so a rebalance burst cannot overshoot it either.
  const std::uint64_t budget =
      pool_controller_ ? pool_controller_->config().memory_budget_bytes : 0;
  const std::uint64_t mem = default_env_memory();
  if (budget > 0 && mem > 0) {
    std::uint64_t committed = 0;
    for (const auto& [id, env] : envs_) {
      (void)id;
      if (env->pool && !env->retired && !env->draining) {
        committed += env->memory_bytes > 0 ? env->memory_bytes : mem;
      }
    }
    const std::uint64_t room = budget > committed ? budget - committed : 0;
    count = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(count, room / mem));
  }
  for (std::uint32_t i = 0; i < count; ++i) prewarm_env();
  return count;
}

std::uint32_t Platform::elastic_retire_warm(std::uint32_t count) {
  std::uint32_t drained = 0;
  // Newest-first: the longest-warm environments (page caches hottest)
  // survive; deterministic because env ids are allocation-ordered.
  for (auto it = envs_.rbegin(); it != envs_.rend() && drained < count;
       ++it) {
    Env& env = *it->second;
    if (!env.pool || env.retired || env.draining) continue;
    if (!env.ready || env.inflight > 0) continue;
    begin_drain(env);
    ++drained;
  }
  return drained;
}

void Platform::arm_elastic_tick() {
  if (pool_controller_ == nullptr || elastic_tick_armed_) return;
  elastic_tick_armed_ = true;
  server_->simulator().schedule_in(
      sim::from_seconds(pool_controller_->config().tick_s),
      [this]() { elastic_tick(); });
}

void Platform::elastic_tick() {
  elastic_tick_armed_ = false;
  if (pool_controller_ == nullptr) return;
  elastic::PoolSnapshot snapshot;
  snapshot.memory_per_env = default_env_memory();
  for (const auto& [id, env] : envs_) {
    (void)id;
    if (!env->pool || env->retired || env->draining) continue;
    if (!env->ready) {
      ++snapshot.booting;
    } else if (env->inflight == 0) {
      ++snapshot.warm;
    }
  }
  const elastic::PoolDecision decision =
      pool_controller_->tick(snapshot, pool_controller_->config().tick_s);
  metrics_.gauge("elastic.target").set(static_cast<double>(decision.target));
  metrics_.gauge("elastic.forecast_rate")
      .set(pool_controller_->forecast_rate());
  metrics_.gauge("elastic.idle_byte_seconds").set(idle_byte_seconds());
  if (decision.prewarm > 0) elastic_prewarm(decision.prewarm);
  if (decision.drain > 0) elastic_retire_warm(decision.drain);
  // Keep ticking only while the run has work; the next arrival re-arms,
  // so an idle platform's event queue actually drains.
  if (!live_sessions_.empty() || !queued_sessions_.empty()) {
    arm_elastic_tick();
  }
}

// ---------------------------------------------------------------------
// SessionState flow

std::vector<RequestOutcome> Platform::run(
    const std::vector<workloads::OffloadRequest>& stream) {
  begin_run();
  for (const auto& request : stream) submit(request);
  return finish_run();
}

// -- Session handles (docs/QOS.md) ------------------------------------

Session::Session(Session&& other) noexcept
    : platform_(other.platform_), id_(other.id_) {
  other.platform_ = nullptr;
  other.id_ = 0;
}

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    if (platform_ != nullptr) platform_->close_stream(id_);
    platform_ = other.platform_;
    id_ = other.id_;
    other.platform_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Session::~Session() {
  if (platform_ != nullptr) platform_->close_stream(id_);
}

void Session::submit(const workloads::OffloadRequest& request) {
  assert(platform_ != nullptr && "submit on a closed Session");
  platform_->submit_to_stream(id_, request);
}

const RequestOutcome* Session::result(std::uint64_t sequence) const {
  assert(platform_ != nullptr && "result on a closed Session");
  return platform_->result(sequence);
}

std::vector<RequestOutcome> Session::close() {
  assert(platform_ != nullptr && "close on a closed Session");
  // The handle stays live through the drain: close_stream() runs the
  // shared event queue dry, and a completion observer may legitimately
  // submit follow-ups into this very session while that happens
  // (closed-loop load does exactly this).  Only once the drain finishes
  // does the handle detach.
  std::vector<RequestOutcome> results = platform_->close_stream(id_);
  platform_ = nullptr;
  return results;
}

const SessionConfig& Session::config() const {
  assert(platform_ != nullptr && "config on a closed Session");
  return platform_->stream_config(id_);
}

Result<Session> Platform::open_session(SessionConfig config) {
  if (config.tenant_weight == 0 ||
      (config.tenant_weight != 1 && config.tenant.empty())) {
    // A weight needs a named tenant to attach to, and 0 would stall DRR.
    return RejectReason::kInvalidConfig;
  }
  // Front-door permission check (docs/RAC.md): a blocked tenant cannot
  // even open a stream.  Per-app tenancy (empty tenant) is gated per
  // request at arrival instead, where the app id is known.
  if (!config.tenant.empty() &&
      server_->access().allow_open(config.tenant,
                                   server_->simulator().now()) !=
          AccessDeny::kNone) {
    return RejectReason::kAccessDenied;
  }
  if (!run_active_) reset_run();
  const std::uint64_t id = next_stream_id_++;
  Stream stream;
  stream.config = std::move(config);
  if (admission_ != nullptr && stream.config.tenant_weight != 1) {
    admission_->set_tenant_weight(stream.config.tenant,
                                  stream.config.tenant_weight);
  }
  streams_.emplace(id, std::move(stream));
  return Session(this, id);
}

const SessionConfig& Platform::stream_config(
    std::uint64_t stream_id) const {
  const auto it = streams_.find(stream_id);
  assert(it != streams_.end());
  return it->second.config;
}

const RequestOutcome* Platform::result(std::uint64_t sequence) const {
  if (sequence >= outcomes_.size() || outcome_done_[sequence] == 0) {
    return nullptr;
  }
  return &outcomes_[sequence];
}

std::vector<RequestOutcome> Platform::close_stream(
    std::uint64_t stream_id) {
  const auto it = streams_.find(stream_id);
  if (it == streams_.end() || !it->second.open) return {};
  drain_run();
  it->second.open = false;
  std::vector<RequestOutcome> results;
  results.reserve(it->second.sequences.size());
  for (const std::uint64_t sequence : it->second.sequences) {
    assert(sequence < outcomes_.size() && outcome_done_[sequence] != 0);
    results.push_back(outcomes_[sequence]);
  }
  bool any_open = false;
  for (const auto& [id, stream] : streams_) {
    (void)id;
    if (stream.open) any_open = true;
  }
  if (!any_open) run_active_ = false;
  return results;
}

// -- Legacy wrappers (one default session) ----------------------------

void Platform::begin_run() {
  reset_run();
  default_stream_ = next_stream_id_++;
  streams_.emplace(default_stream_, Stream{});
}

void Platform::submit(const workloads::OffloadRequest& request) {
  if (!run_active_) reset_run();
  const auto it = streams_.find(default_stream_);
  if (it == streams_.end() || !it->second.open) {
    default_stream_ = next_stream_id_++;
    streams_.emplace(default_stream_, Stream{});
  }
  submit_to_stream(default_stream_, request);
}

std::vector<RequestOutcome> Platform::finish_run() {
  drain_run();
  for (auto& [id, stream] : streams_) {
    (void)id;
    stream.open = false;
  }
  run_active_ = false;
  default_stream_ = 0;
  return outcomes_;
}

// ---------------------------------------------------------------------

void Platform::reset_run() {
  outcomes_.clear();
  outcome_done_.clear();
  completed_ = 0;
  live_sessions_.clear();
  queued_sessions_.clear();
  if (admission_ != nullptr) admission_->scheduler().clear();
  streams_.clear();
  default_stream_ = 0;
  run_active_ = true;
  sim::Simulator& simulator = server_->simulator();
  if (envs_.empty()) {
    const std::uint32_t initial =
        pool_controller_
            ? pool_controller_->initial_target(default_env_memory())
            : config_.warm_pool;
    for (std::uint32_t i = 0; i < initial; ++i) prewarm_env();
  }
  if (pool_controller_ != nullptr) arm_elastic_tick();
  arm_mobility_pump();
  if (faults_) {
    // Fault pump: one-shot (at=) crash rules fire against whichever
    // environment is live at that virtual time — preferring one with
    // sessions in flight, so the crash actually hurts.
    for (const sim::FaultKind kind : {sim::FaultKind::kContainerCrash,
                                      sim::FaultKind::kContainerOom}) {
      for (const sim::SimTime when : faults_->scheduled_times(kind)) {
        simulator.schedule_at(when, [this, kind]() {
          Env* victim = nullptr;
          for (auto& [id, env] : envs_) {
            (void)id;
            if (env->retired || !env->ready) continue;
            if (victim == nullptr) victim = env.get();
            if (env->inflight > 0) {
              victim = env.get();
              break;
            }
          }
          if (victim == nullptr) return;  // nothing alive to kill
          faults_->record_scheduled_fire(kind,
                                         server_->simulator().now());
          crash_env(*victim);
        });
      }
    }
  }
}

void Platform::submit_to_stream(std::uint64_t stream_id,
                                const workloads::OffloadRequest& request) {
  const auto stream_it = streams_.find(stream_id);
  assert(stream_it != streams_.end() && stream_it->second.open &&
         "submit on an unknown or closed session");
  Stream& stream = stream_it->second;
  stream.sequences.push_back(request.sequence);
  sim::Simulator& simulator = server_->simulator();
  if (outcomes_.size() <= request.sequence) {
    outcomes_.resize(request.sequence + 1);
    outcome_done_.resize(request.sequence + 1, 0);
  }
  metrics_.counter("sessions.offered").inc();
  auto session = std::allocate_shared<SessionState>(
      sim::StlSlabAllocator<SessionState>(session_pool_.get()));
  session->request = request;
  session->kind = request.task.kind;
  const android::MobileApp& app = app_for(session->kind);
  session->app_id = app.app_id();
  session->apk_bytes = app.apk_bytes();
  // The QoS identity rides on the session the request was submitted
  // through; an empty tenant falls back to per-app tenancy (the legacy
  // token-bucket key).
  session->stream_id = stream_id;
  session->klass = stream.config.priority;
  session->deadline = stream.config.deadline;
  session->tenant = stream.config.tenant.empty() ? session->app_id
                                                 : stream.config.tenant;
  metrics_
      .counter(std::string("qos.offered.") + qos::to_string(session->klass))
      .inc();
  // Execute the real kernel now; work units drive the simulated times.
  // Identical tasks replayed across platforms (§VI-D record/replay)
  // share one execution through a process-wide memo.
  session->executed = execute_task_cached(request.task);
  session->conn = std::make_unique<net::Connection>(
      *link_, rng_.fork(request.sequence + 1));
  session->conn->set_metrics(&metrics_);
  simulator.schedule_at(std::max(request.arrival, simulator.now()),
                        [this, session]() { on_arrival(session); });
}

void Platform::drain_run() {
  sim::Simulator& simulator = server_->simulator();
  simulator.run();
  if (faults_) {
    // With recovery disabled (or budgets exhausted mid-flight) sessions
    // can strand on a dead environment; the event queue drains with
    // their outcomes unrecorded. Mark them rejected so the caller sees
    // every request accounted for — and so the invariant report is the
    // only place a stranding hides.  Sessions stranded *in a class
    // queue* (every in-service session died first) give their slot back
    // so the admission ledger stays balanced.
    for (const auto& s : live_sessions_) {
      if (s->done) continue;
      if (admission_ != nullptr) {
        if (s->queued) {
          admission_->abandon_queued(s->klass, s->tenant,
                                     s->request.sequence);
          queued_sessions_.erase(s->request.sequence);
          s->queued = false;
        }
        if (s->admitted) {
          admission_->release();
          s->admitted = false;
        }
      }
      RequestOutcome outcome;
      outcome.request = s->request;
      outcome.phases = s->phases;
      outcome.completed_at = simulator.now();
      outcome.response = simulator.now() - s->request.arrival;
      outcome.rejected = true;
      outcome.reject_reason = RejectReason::kStranded;
      outcome.stranded = true;
      outcome.tenant = s->tenant;
      outcome.qos_class = s->klass;
      outcome.radio = config_.link.name;
      outcome.resumed = s->resumed;
      outcome.dispatch_attempts = s->dispatch_attempts;
      outcome.connect_attempts = s->connect_attempts;
      record_outcome(s->request.sequence, std::move(outcome));
      s->done = true;
      ++completed_;
      metrics_.counter("sessions.stranded").inc();
      metrics_
          .counter(std::string("qos.stranded.") + qos::to_string(s->klass))
          .inc();
      if (s->span_session != obs::kNoSpan) {
        trace_.annotate(s->span_session, "stranded", std::uint64_t{1});
      }
    }
    live_sessions_.clear();
    queued_sessions_.clear();
  }
  trace_.close_open_spans(simulator.now());
  assert(completed_ == outcomes_.size());
}

void Platform::record_outcome(std::uint64_t sequence,
                              RequestOutcome outcome) {
  assert(sequence < outcomes_.size());
  outcomes_[sequence] = std::move(outcome);
  outcome_done_[sequence] = 1;
}

void Platform::on_arrival(std::shared_ptr<SessionState> s) {
  if (trace_.enabled()) {
    s->span_session = trace_.begin(s->request.sequence + 1, "session",
                                   "session", server_->simulator().now());
    trace_.annotate(s->span_session, "app", s->app_id);
    trace_.annotate(s->span_session, "device",
                    static_cast<std::uint64_t>(s->request.device_id));
    trace_.annotate(s->span_session, "class", qos::to_string(s->klass));
    trace_.annotate(s->span_session, "tenant", s->tenant);
    if (const auto it = streams_.find(s->stream_id); it != streams_.end()) {
      trace_.annotate(
          s->span_session, "tenant_weight",
          static_cast<std::uint64_t>(it->second.config.tenant_weight));
    }
    if (config_.shard_index >= 0) {
      trace_.annotate(s->span_session, "placement",
                      static_cast<std::uint64_t>(config_.shard_index));
    }
  }
  if (config_.adaptive_offloading) {
    DecisionState& history = decisions_[s->app_id];
    constexpr std::uint32_t kExplore = 3;  // first offloads gather data
    if (history.samples >= kExplore &&
        history.ewma_remote_s >= history.ewma_local_s) {
      // Run locally: no traffic, no cloud involvement.
      const device::MobileDevice& dev = device_for(s->request.device_id);
      const sim::SimDuration local =
          dev.local_execution_time(s->kind, s->executed);
      server_->simulator().schedule_in(local, [this, s, local]() {
        RequestOutcome outcome;
        outcome.request = s->request;
        outcome.completed_at = server_->simulator().now();
        outcome.response = local;
        outcome.local_time = local;
        outcome.speedup = 1.0;  // executed locally by choice
        const device::RadioProfile radio = radio_profile();
        const device::MobileDevice& dev2 =
            device_for(s->request.device_id);
        outcome.local_energy_mj =
            dev2.local_energy_mj(s->kind, s->executed, radio);
        outcome.offload_energy_mj = outcome.local_energy_mj;
        outcome.tenant = s->tenant;
        outcome.qos_class = s->klass;
        outcome.radio = config_.link.name;
        record_outcome(s->request.sequence, std::move(outcome));
        ++completed_;
        metrics_.counter("sessions.local").inc();
        metrics_
            .counter(std::string("qos.local.") + qos::to_string(s->klass))
            .inc();
        if (s->span_session != obs::kNoSpan) {
          trace_.annotate(s->span_session, "local", std::uint64_t{1});
          trace_.end(s->span_session, server_->simulator().now());
        }
        // Local runs refresh the local estimate.
        DecisionState& h = decisions_[s->app_id];
        const double local_s = sim::to_seconds(local);
        h.ewma_local_s = h.ewma_local_s == 0
                             ? local_s
                             : 0.7 * h.ewma_local_s + 0.3 * local_s;
      });
      return;
    }
  }
  // RAC request gate (docs/RAC.md): a blocked tenant is refused before
  // it consumes any platform resource, and the in-flight quota clips a
  // flooding tenant ahead of the QoS queues.  Every kNone is paired with
  // release() in finish_session via rac_slot.
  const AccessDeny deny =
      server_->access().admit(s->tenant, server_->simulator().now());
  if (deny != AccessDeny::kNone) {
    live_sessions_.push_back(s);
    reject_session(s, deny == AccessDeny::kQuota
                          ? RejectReason::kQuotaExceeded
                          : RejectReason::kAccessDenied);
    return;
  }
  s->rac_slot = true;
  if (pool_controller_ != nullptr) {
    // Offloaded arrivals feed the forecaster; locally served requests
    // (the adaptive early-return above) never need warm capacity.
    pool_controller_->observe_arrival(s->klass);
    arm_elastic_tick();
  }
  live_sessions_.push_back(s);
  attempt_connect(s);
}

void Platform::attempt_connect(std::shared_ptr<SessionState> s) {
  // The retry/backoff continuations carry no epoch guard; a session the
  // RAC block sweep rejected mid-connect must not rise again.
  if (s->done) return;
  sim::Simulator& simulator = server_->simulator();
  SessionScope scope(*this, *s);
  // Retries reuse the one "connect" span; it ends when a handshake lands.
  if (s->span_phase == obs::kNoSpan) begin_phase(*s, "connect");
  const sim::SimDuration stall = mobility_stall(simulator.now());
  if (stall > 0) {
    // Radio detached (handoff outage): the handshake cannot even start;
    // the device re-attempts the instant the new radio attaches.  A
    // session whose connection the outage cut mid-retry counts as
    // resumed; a request merely *arriving* during the gap just waits.
    if (s->connect_attempts > 0) note_resumption(*s);
    s->phases.network_connection += stall;
    const std::uint64_t epoch = s->epoch;
    simulator.schedule_in(stall, [this, s, epoch]() {
      if (s->done || s->epoch != epoch) return;
      attempt_connect(s);
    });
    return;
  }
  ++s->connect_attempts;
  if (s->span_phase != obs::kNoSpan) {
    trace_.annotate(s->span_phase, "attempts",
                    static_cast<std::uint64_t>(s->connect_attempts));
  }
  const sim::SimDuration connect = s->conn->establish();
  s->phases.network_connection += connect;
  if (faults_ &&
      faults_->should_fire(sim::FaultKind::kNetDrop, simulator.now())) {
    // The handshake never completes; the client times out and retries
    // with exponential backoff until its attempt budget runs dry.
    if (s->connect_attempts >= config_.max_connect_attempts) {
      simulator.schedule_in(connect, [this, s]() {
        reject_session(s, RejectReason::kConnectFailed);
      });
      return;
    }
    const sim::SimDuration backoff =
        config_.connect_backoff *
        static_cast<sim::SimDuration>(1u << (s->connect_attempts - 1));
    s->phases.network_connection += backoff;
    simulator.schedule_in(connect + backoff,
                          [this, s]() { attempt_connect(s); });
    return;
  }
  simulator.schedule_in(connect, [this, s]() { on_connected(s); });
}

void Platform::on_connected(std::shared_ptr<SessionState> s) {
  if (s->done) return;  // swept by a RAC block while the handshake flew
  sim::Simulator& simulator = server_->simulator();
  SessionScope scope(*this, *s);
  s->connected_at = simulator.now();
  end_phase(*s);  // connect
  begin_phase(*s, "dispatch");
  const Calibration& cal = server_->calibration();

  sim::SimDuration platform_cost = cal.dispatcher_cost;
  if (config_.code_cache) {
    platform_cost += cal.warehouse_lookup_cost;
    s->cache_hit = server_->warehouse().lookup("ref:" + s->app_id);
    if (s->span_phase != obs::kNoSpan) {
      trace_.annotate(s->span_phase, "cache_hit",
                      static_cast<std::uint64_t>(s->cache_hit ? 1 : 0));
    }
  }
  // Request-based Access Controller: per-app analysis, once.
  if (server_->access().ensure_analyzed(s->app_id)) {
    platform_cost += cal.access_analysis_cost;
  } else {
    platform_cost += cal.access_check_cost;
  }

  // Request-based Access Controller front gate: requests of blocked
  // tenants never reach an environment (§IV-E).  Belt and braces after
  // the arrival gate — the tenant may have crossed the threshold while
  // this session's handshake was in flight.
  if (server_->access().allow_open(s->tenant, simulator.now()) !=
      AccessDeny::kNone) {
    reject_session(s, RejectReason::kAccessDenied);
    return;
  }

  // Admission front door (docs/LOADGEN.md, docs/QOS.md): per-tenant
  // token bucket, per-class utilization shedding, then a dispatch slot
  // or the class-aware bounded queue.
  if (admission_ != nullptr) {
    const Result<AdmissionController::Admitted> verdict = admission_->offer(
        AdmissionController::Offer{s->tenant, s->klass,
                                   s->request.sequence},
        simulator.now());
    if (!verdict) {
      reject_session(s, verdict.error());
      return;
    }
    if (*verdict == AdmissionController::Admitted::kQueued) {
      s->queued = true;
      s->enqueued_at = simulator.now();
      s->pending_lead = platform_cost;
      queued_sessions_.emplace(s->request.sequence, s);
      if (s->span_phase != obs::kNoSpan) {
        trace_.annotate(s->span_phase, "queued", std::uint64_t{1});
      }
      return;  // dispatched by maybe_start_queued() when a slot frees
    }
    s->admitted = true;
  }

  dispatch(s, platform_cost);
}

void Platform::maybe_start_queued() {
  if (admission_ == nullptr) return;
  sim::Simulator& simulator = server_->simulator();
  while (admission_->can_start_queued()) {
    // The scheduler decides which class/tenant goes next (strict priority
    // + weighted DRR); finished sessions were already removed from the
    // queue by finish_session, so every pop maps to a live session.
    const auto popped = admission_->pop_queued(simulator.now());
    if (!popped) break;
    const auto it = queued_sessions_.find(popped->id);
    assert(it != queued_sessions_.end() &&
           "scheduler echoed an id the platform is not tracking");
    std::shared_ptr<SessionState> s = it->second;
    queued_sessions_.erase(it);
    s->queued = false;
    s->admitted = true;
    s->queue_wait = popped->waited;
    s->drr_deficit = popped->deficit_after;
    SessionScope scope(*this, *s);
    if (s->span_phase != obs::kNoSpan) {
      trace_.annotate(s->span_phase, "queue_wait_us",
                      static_cast<std::uint64_t>(s->queue_wait));
      trace_.annotate(s->span_phase, "deficit", s->drr_deficit);
    }
    dispatch(s, s->pending_lead);
  }
}

void Platform::dispatch(std::shared_ptr<SessionState> s,
                        sim::SimDuration lead_cost) {
  sim::Simulator& simulator = server_->simulator();
  ++s->dispatch_attempts;
  EnvRecord* record =
      dispatcher_->assign(s->request, s->app_id, simulator.now(),
                          class_backlog_threshold(s->klass), s->klass);
  Env* env = nullptr;
  if (record != nullptr) {
    const auto it = envs_.find(record->id);
    assert(it != envs_.end());
    env = it->second.get();
  }
  const std::uint64_t epoch = s->epoch;
  simulator.schedule_in(lead_cost, [this, s, env, epoch]() {
    if (s->done || s->epoch != epoch) return;  // aborted meanwhile
    SessionScope scope(*this, *s);
    Env* target = env;
    bool claimed_pool = false;
    bool fresh = false;
    if (target == nullptr || target->retired || target->draining) {
      const std::string key =
          dispatcher_->binding_key(s->request, s->app_id);
      // A warm-pool environment (pre-booted, unclaimed) is rebound to
      // this device instead of paying a cold start.  Draining capacity
      // stopped leasing the moment its drain began.
      Env* claimed = nullptr;
      for (auto& [id, candidate] : envs_) {
        (void)id;
        if (candidate->pool && !candidate->retired &&
            !candidate->draining) {
          claimed = candidate.get();
          break;
        }
      }
      if (claimed != nullptr) {
        if (claimed->ready) {
          // Prewarm lead time: how far ahead of demand the controller
          // had this environment standing warm.
          metrics_.histogram("elastic.prewarm.lead_ms")
              .observe(sim::to_millis(server_->simulator().now() -
                                      claimed->ready_at));
        }
        claimed->pool = false;
        claimed->binding_key = key;
        server_->env_db().rebind(claimed->id, key);
        target = claimed;
        claimed_pool = true;
      } else {
        // Switch the phase before provisioning so faults fired during
        // the (synchronous) container start annotate the boot, not the
        // dispatch decision.
        begin_phase(*s, "provision");
        fresh = true;
        target = &provision_env(key, server_->simulator().now());
      }
    }
    if (!fresh) {
      fresh = !target->ready;
      begin_phase(*s, fresh ? "provision" : "reuse");
    }
    s->fresh_env = fresh;
    if (s->span_phase != obs::kNoSpan) {
      trace_.annotate(s->span_phase, "env_id",
                      static_cast<std::uint64_t>(target->id));
      if (claimed_pool) {
        trace_.annotate(s->span_phase, "warm_pool", std::uint64_t{1});
      }
    }
    s->env = target;
    ++target->inflight;  // pins the env against idle reclamation
    if (target->ready && target->inflight == 1) {
      lifecycle_.transition(target->id, elastic::CacState::kLeased,
                            server_->simulator().now());
    }
    if (target->ready) {
      on_env_ready(s);
    } else {
      target->waiters.push_back([this, s, epoch]() {
        if (s->done || s->epoch != epoch) return;
        on_env_ready(s);
      });
    }
  });
}

void Platform::on_env_ready(std::shared_ptr<SessionState> s) {
  sim::Simulator& simulator = server_->simulator();
  SessionScope scope(*this, *s);
  if (s->env->failed) {
    // Provisioning failed (host capacity): reject the request.
    reject_session(s, RejectReason::kCapacity);
    return;
  }
  const sim::SimDuration stall = mobility_stall(simulator.now());
  if (stall > 0) {
    // Handoff outage cut the session between dispatch and upload: the
    // environment stays bound and the upload starts when the new radio
    // attaches (the wait lands in runtime_preparation, which is wall
    // time from the device's perspective).
    note_resumption(*s);
    const std::uint64_t epoch = s->epoch;
    simulator.schedule_in(stall, [this, s, epoch]() {
      if (s->done || s->epoch != epoch) return;
      on_env_ready(s);
    });
    return;
  }
  s->phases.runtime_preparation = simulator.now() - s->connected_at;
  // The paper's headline latency split: what a session waits when its
  // environment must boot vs when a warm one is rebound.
  metrics_
      .histogram(s->fresh_env ? "session.prep.provision_ms"
                              : "session.prep.reuse_ms")
      .observe(sim::to_millis(s->phases.runtime_preparation));
  metrics_
      .counter(s->fresh_env ? "elastic.cold_boots" : "elastic.warm_hits")
      .inc();
  {
    const double hits = static_cast<double>(
        metrics_.counter("elastic.warm_hits").value());
    const double cold = static_cast<double>(
        metrics_.counter("elastic.cold_boots").value());
    metrics_.gauge("elastic.warm_hit_ratio")
        .set(hits / std::max(1.0, hits + cold));
  }
  begin_phase(*s, "transfer");

  // Determine the code push. With a code cache the warehouse answer
  // rules; without one the client must push into every environment that
  // has not seen this app yet (the duplicate transfer of Obs. 3).
  bool have_code;
  if (config_.code_cache) {
    have_code = s->cache_hit;
  } else {
    have_code = s->env->pushed_apps.contains(s->app_id);
    s->cache_hit = have_code;
  }

  const device::MobileDevice& dev = device_for(s->request.device_id);
  device::OffloadClient client(dev);
  const device::UploadPlan plan =
      client.plan_upload(s->request, s->apk_bytes, have_code);

  // Upload: control handshake, optional code, files + parameters.
  sim::SimDuration upload = dev.config().serialize_cost;
  upload += s->conn->upload(net::Message{net::MessageType::kControl,
                                         client.protocol().request_control,
                                         s->app_id});
  upload += s->conn->download(net::Message{
      net::MessageType::kControl, client.protocol().response_control,
      s->app_id});
  if (plan.push_code) {
    upload += s->conn->upload(net::Message{net::MessageType::kMobileCode,
                                           plan.code_bytes, s->app_id});
    s->env->pushed_apps.insert(s->app_id);
    if (config_.code_cache) {
      server_->warehouse().store("ref:" + s->app_id, plan.code_bytes);
    }
  }
  const std::uint64_t payload = plan.file_bytes + plan.param_bytes;
  if (payload > 0) {
    upload += s->conn->upload(net::Message{net::MessageType::kFileParams,
                                           payload, s->app_id});
  }


  // Server-side ingest of the arriving bytes: shared tmpfs (free relative
  // to the link) or the environment's disk (virtualized for VMs).
  const std::uint64_t ingest_bytes = plan.code_bytes + payload;
  sim::SimDuration ingest = 0;
  if (ingest_bytes > 0) {
    bool staged = false;
    if (config_.sharing_offload_io) {
      staged = server_->shared_layer().stage_request_files(
          s->request.sequence, payload, simulator.now());
      if (staged) {
        ingest = server_->shared_layer().io_time(ingest_bytes);
        s->staged = payload > 0;
      }
    }
    if (config_.sharing_offload_io && !staged && payload > 0) {
      // In-memory layer full: spill this request's files to disk (the
      // tradeoff §IV-C accepts — volatility and size are bounded because
      // offload payloads are small, but the fallback must exist).
      s->spilled_to_disk = true;
      const sim::SimDuration native =
          server_->disk().service_time(ingest_bytes, true);
      ingest = native;
      server_->disk().submit(fs::IoKind::kWrite, ingest_bytes, true,
                             []() {});
    }
    if (!config_.sharing_offload_io) {
      const sim::SimDuration native =
          server_->disk().service_time(ingest_bytes, true);
      ingest = s->env->is_vm
                   ? static_cast<sim::SimDuration>(
                         static_cast<double>(native) /
                         server_->calibration().vm_io_factor)
                   : native;
      // The write hits the host disk (the Fig. 2 I/O burst after boot).
      server_->disk().submit(fs::IoKind::kWrite, ingest_bytes, true,
                             []() {});
    }
  }

  s->upload_time = upload;
  const sim::SimDuration transfer = std::max(upload, ingest);
  s->phases.data_transfer = transfer;
  if (s->span_phase != obs::kNoSpan) {
    trace_.annotate(s->span_phase, "push_code",
                    static_cast<std::uint64_t>(plan.push_code ? 1 : 0));
    trace_.annotate(s->span_phase, "bytes",
                    static_cast<std::uint64_t>(ingest_bytes));
    if (s->spilled_to_disk) {
      trace_.annotate(s->span_phase, "spilled", std::uint64_t{1});
    }
  }
  const std::uint64_t epoch = s->epoch;
  simulator.schedule_in(transfer, [this, s, epoch]() {
    if (s->done || s->epoch != epoch) return;  // env died mid-transfer
    on_uploaded(s);
  });
}

void Platform::on_uploaded(std::shared_ptr<SessionState> s) {
  sim::Simulator& simulator = server_->simulator();
  SessionScope scope(*this, *s);
  begin_phase(*s, "execute");  // transfer ends now; queueing included
  Env& env = *s->env;

  // The controller filters every workflow leaving the container (§IV-E);
  // honest benchmark apps hold all of these grants.  Adversarial streams
  // additionally probe the operations their SessionConfig lists
  // (docs/RAC.md): each disallowed probe lands in the tenant's violation
  // ledger, and crossing the threshold blocks the tenant on the spot —
  // including this very session, swept by the on_block hook mid-handler.
  auto& access = server_->access();
  if (s->executed.units.io_bytes > 0) {
    access.check(s->app_id, s->tenant, Operation::kReadOffloadFile,
                 simulator.now());
    access.check(s->app_id, s->tenant, Operation::kWriteOffloadFile,
                 simulator.now());
  }
  access.check(s->app_id, s->tenant, Operation::kBinderCall,
               simulator.now());
  if (config_.code_cache) {
    access.check(s->app_id, s->tenant, Operation::kReadWarehouse,
                 simulator.now());
  }
  if (const auto stream_it = streams_.find(s->stream_id);
      stream_it != streams_.end()) {
    for (const Operation op : stream_it->second.config.probe_ops) {
      access.check(s->app_id, s->tenant, op, simulator.now());
      if (s->done) break;  // probe crossed the threshold; we were swept
    }
  }
  if (s->done) return;  // self-evicted by the RAC block sweep

  // ClassLoader: first load per environment pays dex verification.
  android::ClassLoader& loader =
      env.is_vm ? env.vm_loader : env.cac->classloader();
  const sim::SimDuration classload = loader.load(s->app_id, s->apk_bytes);

  // Binder traffic of the task (exercises the Android Container Driver
  // for container-backed environments).
  sim::SimDuration binder_cost = 0;
  const auto workload = workloads::make_workload(s->kind);
  const std::uint32_t binder_calls = workload->app().binder_calls_per_task;
  if (!env.is_vm && env.cac->container() != nullptr) {
    const kernel::DevNsId ns = env.cac->container()->devns();
    for (std::uint32_t i = 0; i < binder_calls; ++i) {
      const auto result = server_->kernel().syscalls().invoke(
          kernel::kSysBinderTransact, ns, 512);
      binder_cost += result.cost;
    }
  } else {
    binder_cost = binder_calls * 2 *
                  kernel::BinderDriver::transaction_cost(512);
  }

  // Compute time: native units rate, degraded by the platform CPU factor,
  // plus the offloading I/O the task performs.
  const sim::SimDuration native =
      server_->native_compute_time(s->kind, s->executed.units.compute);
  const auto cpu = static_cast<sim::SimDuration>(
      static_cast<double>(native) / cpu_factor());
  sim::SimDuration io;
  if (s->spilled_to_disk) {
    // Spilled inputs read back from disk regardless of the shared layer.
    const Calibration& cal = server_->calibration();
    io = server_->disk().service_time(s->executed.units.io_bytes, true) +
         static_cast<sim::SimDuration>(s->request.task.io_ops) *
             sim::from_millis(cal.disk.avg_seek_ms + cal.disk.rotational_ms);
  } else {
    io = compute_io_time(env, s->executed.units.io_bytes,
                         s->request.task.io_ops);
  }
  if (config_.sharing_offload_io && !s->spilled_to_disk) {
    // Burn after reading: consume the staged files.
    server_->shared_layer().consume_request_files(s->request.sequence,
                                                  simulator.now());
    s->staged = false;
  } else if (s->executed.units.io_bytes > 0) {
    // The task reads its inputs back off the disk.
    server_->disk().submit(fs::IoKind::kRead, s->executed.units.io_bytes,
                           true, []() {});
  }

  // Interactive workloads keep chatting with the device while executing
  // (game-state sync, COMET-style): each round is a small message pair
  // plus device-side handling, serialized with the computation. Locally
  // run code gets this interaction for free, which is why chatty apps
  // profit less from offloading than their compute ratio suggests.
  sim::SimDuration interaction = 0;
  for (std::uint32_t round = 0; round < s->request.task.control_rounds;
       ++round) {
    s->conn->upload(net::Message{net::MessageType::kControl, 48, s->app_id});
    s->conn->download(
        net::Message{net::MessageType::kControl, 48, s->app_id});
    interaction += config_.link.rtt + sim::from_millis(60);
  }

  // Processor sharing: when more environments compute than the server
  // has cores, everybody slows proportionally (admission-time
  // approximation; exact redistribution is unnecessary at the paper's
  // 5-device scale but matters for the consolidation-density bench).
  const double concurrency =
      static_cast<double>(server_->monitor().running_jobs() + 1);
  const double cores = static_cast<double>(server_->calibration().server_cores);
  const double contention = std::max(1.0, concurrency / cores);
  const sim::SimDuration duration = static_cast<sim::SimDuration>(
      static_cast<double>(classload + binder_cost + cpu + io + interaction) *
      contention);
  const sim::SimTime start = std::max(simulator.now(), env.busy_until);
  const sim::SimTime done = start + duration;
  env.busy_until = done;
  if (EnvRecord* record = server_->env_db().find(env.id)) {
    if (!env.draining) record->state = EnvState::kBusy;
    record->busy_until = done;
  }
  server_->monitor().record_cpu(start, done, 1.0);
  server_->monitor().job_started(s->klass);
  s->computing = true;
  if (faults_) {
    // Container crash / OOM-kill: the environment dies halfway through
    // this job. One consult per job and per kind keeps both substreams
    // advancing deterministically regardless of which one fires.
    const bool crash_fire =
        faults_->should_fire(sim::FaultKind::kContainerCrash,
                             simulator.now());
    const bool oom_fire = faults_->should_fire(
        sim::FaultKind::kContainerOom, simulator.now());
    if (crash_fire || oom_fire) {
      const std::uint32_t env_id = env.id;
      simulator.schedule_at(start + duration / 2, [this, env_id]() {
        const auto it = envs_.find(env_id);
        if (it == envs_.end() || it->second->retired) return;
        crash_env(*it->second);
      });
    }
  }
  const std::uint64_t epoch = s->epoch;
  simulator.schedule_at(done, [this, s, epoch]() {
    if (s->done || s->epoch != epoch) return;  // env died mid-compute
    on_computed(s);
  });
}

void Platform::on_computed(std::shared_ptr<SessionState> s) {
  sim::Simulator& simulator = server_->simulator();
  SessionScope scope(*this, *s);
  server_->monitor().job_finished(s->klass);
  s->computing = false;
  Env& env = *s->env;
  // Computation phase spans upload-end → compute-end (queueing included).
  s->phases.computation = simulator.now() -
                          (s->connected_at + s->phases.runtime_preparation +
                           s->phases.data_transfer);
  begin_phase(*s, "teardown");  // result download + completion control
  ++env.jobs_served;
  if (EnvRecord* record = server_->env_db().find(env.id)) {
    if (record->busy_until <= simulator.now() &&
        record->state == EnvState::kBusy) {
      record->state = EnvState::kIdle;
    }
    ++record->jobs_executed;
  }
  if (config_.code_cache) {
    server_->warehouse().record_execution("ref:" + s->app_id, env.id);
  }

  // Result + completion control flow back.
  device::OffloadClient client(device_for(s->request.device_id));
  sim::SimDuration download = s->conn->download(net::Message{
      net::MessageType::kResult, s->request.task.result_bytes, s->app_id});
  download += s->conn->upload(net::Message{
      net::MessageType::kControl, client.protocol().completion_control,
      s->app_id});
  s->download_time = download;
  s->phases.data_transfer += download;
  // Handoff outage at result-delivery time: the download waits for the
  // new radio to attach (the computed result is already spooled server
  // side), then transfers at the new radio's rates.
  const sim::SimDuration stall = mobility_stall(simulator.now());
  if (stall > 0) {
    note_resumption(*s);
    s->phases.data_transfer += stall;
  }
  const std::uint64_t epoch = s->epoch;
  simulator.schedule_in(stall + download, [this, s, epoch]() {
    if (s->done || s->epoch != epoch) return;  // env died mid-download
    complete(s);
  });
}

void Platform::complete(std::shared_ptr<SessionState> s) {
  sim::Simulator& simulator = server_->simulator();
  SessionScope scope(*this, *s);
  end_phase(*s);  // teardown
  RequestOutcome outcome;
  outcome.request = s->request;
  outcome.phases = s->phases;
  outcome.completed_at = simulator.now();
  outcome.response = simulator.now() - s->request.arrival;
  const device::MobileDevice& dev = device_for(s->request.device_id);
  outcome.local_time = dev.local_execution_time(s->kind, s->executed);
  outcome.speedup = outcome.response > 0
                        ? static_cast<double>(outcome.local_time) /
                              static_cast<double>(outcome.response)
                        : 0.0;
  const device::RadioProfile radio = radio_profile();
  outcome.upload_time = s->upload_time;
  outcome.download_time = s->download_time;
  outcome.offload_energy_mj = offload_energy_mj(
      s->phases, s->upload_time, s->download_time, radio);
  outcome.local_energy_mj = dev.local_energy_mj(s->kind, s->executed, radio);
  outcome.traffic = s->conn->traffic();
  outcome.env_id = s->env->id;
  outcome.code_cache_hit = s->cache_hit;
  outcome.queue_wait = s->queue_wait;
  outcome.dispatch_attempts = s->dispatch_attempts;
  outcome.connect_attempts = s->connect_attempts;
  outcome.recovered = s->recovered;
  outcome.radio = config_.link.name;
  outcome.resumed = s->resumed;
  outcome.tenant = s->tenant;
  outcome.qos_class = s->klass;
  outcome.deadline_missed =
      s->deadline > 0 && outcome.response > s->deadline;
  env_traffic_[s->env->id].merge(s->conn->traffic());

  metrics_.counter("sessions.completed").inc();
  metrics_
      .counter(std::string("qos.completed.") + qos::to_string(s->klass))
      .inc();
  if (outcome.deadline_missed) {
    metrics_.counter("qos.deadline.missed").inc();
  }
  if (s->cache_hit) metrics_.counter("sessions.cache_hits").inc();
  if (s->recovered) metrics_.counter("sessions.recovered").inc();
  metrics_.histogram("session.response_ms")
      .observe(sim::to_millis(outcome.response));
  metrics_
      .histogram(std::string("qos.response_ms.") + qos::to_string(s->klass))
      .observe(sim::to_millis(outcome.response));
  if (admission_ != nullptr) {
    // Goodput latency: responses of sessions that made it through
    // admission (the saturation bench's p99-of-accepted curve).
    metrics_.histogram("session.accepted.response_ms")
        .observe(sim::to_millis(outcome.response));
  }
  if (s->span_session != obs::kNoSpan) {
    trace_.annotate(s->span_session, "env_id",
                    static_cast<std::uint64_t>(s->env->id));
    trace_.annotate(s->span_session, "cache_hit",
                    static_cast<std::uint64_t>(s->cache_hit ? 1 : 0));
    if (s->recovered) {
      trace_.annotate(s->span_session, "recovered", std::uint64_t{1});
    }
    trace_.annotate(s->span_session, "speedup", outcome.speedup);
    if (outcome.deadline_missed) {
      trace_.annotate(s->span_session, "deadline_missed", std::uint64_t{1});
    }
    trace_.end(s->span_session, simulator.now());
  }

  record_outcome(s->request.sequence, std::move(outcome));

  unbind_session(*s);
  finish_session(*s);
  if (completion_observer_) {
    completion_observer_(outcomes_[s->request.sequence]);
  }

  if (config_.adaptive_offloading) {
    DecisionState& history = decisions_[s->app_id];
    const double remote_s =
        sim::to_seconds(outcomes_[s->request.sequence].response);
    const double local_s =
        sim::to_seconds(outcomes_[s->request.sequence].local_time);
    history.ewma_remote_s = history.samples == 0
                                ? remote_s
                                : 0.7 * history.ewma_remote_s +
                                      0.3 * remote_s;
    history.ewma_local_s = history.ewma_local_s == 0
                               ? local_s
                               : 0.7 * history.ewma_local_s + 0.3 * local_s;
    ++history.samples;
  }
}

// ---------------------------------------------------------------------
// Fault handling and recovery

void Platform::arm_mobility_pump() {
  if (config_.mobility.empty()) return;
  // Each run replays the plan from the base radio; a previous run's
  // handoffs must not leak into this one.
  config_.link = base_link_;
  link_->set_config(base_link_);
  link_down_until_ = 0;
  sim::Simulator& simulator = server_->simulator();
  const sim::SimTime start = simulator.now();
  for (const HandoffEvent& event : config_.mobility) {
    simulator.schedule_at(start + event.at,
                          [this, event]() { apply_handoff(event); });
  }
}

void Platform::apply_handoff(const HandoffEvent& event) {
  sim::Simulator& simulator = server_->simulator();
  const std::string from = config_.link.name;
  config_.link = event.to;
  link_->set_config(event.to);
  metrics_.counter("mobility.handoffs").inc();
  metrics_
      .counter(std::string("mobility.handoff.") + from + "_to_" +
               event.to.name)
      .inc();
  if (event.outage > 0) {
    link_down_until_ =
        std::max(link_down_until_, simulator.now() + event.outage);
    metrics_.counter("mobility.outages").inc();
    metrics_.histogram("mobility.outage_ms")
        .observe(sim::to_millis(event.outage));
  }
  if (trace_.enabled()) {
    trace_.instant(kPlatformTrack,
                   ("handoff " + from + "→" + event.to.name).c_str(),
                   "mobility", simulator.now());
  }
}

void Platform::note_resumption(SessionState& s) {
  if (s.resumed) return;  // count each session once, however often it stalls
  s.resumed = true;
  metrics_.counter("mobility.sessions_resumed").inc();
  if (s.span_session != obs::kNoSpan) {
    trace_.annotate(s.span_session, "resumed", std::uint64_t{1});
  }
}

void Platform::crash_env(Env& env) {
  if (env.retired) return;
  metrics_.counter("env.crashes").inc();
  env.crashed = true;
  env.retired = true;
  env.ready = false;
  env.commit_end = server_->simulator().now();
  server_->monitor().env_down(env.id);
  lifecycle_.transition(env.id, elastic::CacState::kReclaimed,
                        server_->simulator().now());
  server_->env_db().retire(env.id);
  server_->warehouse().forget_env(env.id);
  if (env.is_vm) {
    server_->hypervisor().destroy(env.vm_id);
  } else if (env.cac) {
    env.cac->crash(server_->kernel());
  }
  // Sessions bound to the dead environment: neutralize every scheduled
  // continuation (epoch bump) and give back what they held — Monitor job
  // slots and staged one-shot files die with the container. The sessions
  // stay *bound*: the Monitor has not discovered the crash yet, and the
  // session-env-liveness invariant tolerates exactly that window.
  for (const auto& s : live_sessions_) {
    if (s->done || s->env != &env) continue;
    ++s->epoch;
    if (trace_.enabled()) {
      trace_.instant(s->request.sequence + 1, "env_crash", "fault",
                     server_->simulator().now());
    }
    if (s->computing) {
      server_->monitor().job_finished(s->klass);
      s->computing = false;
    }
    if (s->staged) {
      server_->shared_layer().release_request_files(s->request.sequence);
      s->staged = false;
    }
  }
  server_->monitor().notify_crash(env.id);
}

void Platform::recover_env(std::uint32_t env_id) {
  // The Monitor's health sweep found the corpse. Without crash recovery
  // the platform does nothing — sessions stay bound to the dead CID and
  // the invariant harness is what notices.
  if (!config_.crash_recovery) return;
  const auto it = envs_.find(env_id);
  if (it == envs_.end()) return;
  Env& dead = *it->second;
  std::vector<std::shared_ptr<SessionState>> victims;
  for (const auto& s : live_sessions_) {
    if (!s->done && s->env == &dead) victims.push_back(s);
  }
  for (const auto& s : victims) {
    if (dead.inflight > 0) --dead.inflight;
    s->env = nullptr;
    ++s->epoch;
    if (s->dispatch_attempts >= config_.max_redispatch) {
      reject_session(s, RejectReason::kRedispatchExhausted);
      continue;
    }
    // Re-dispatch over the existing connection: the device re-sends its
    // request and the session restarts from runtime preparation.
    s->recovered = true;
    s->connected_at = server_->simulator().now();
    {
      SessionScope scope(*this, *s);
      begin_phase(*s, "redispatch");  // closes the span the crash cut off
    }
    dispatch(s, server_->calibration().dispatcher_cost);
  }
}

void Platform::on_tenant_blocked(const std::string& tenant,
                                 sim::SimTime now) {
  // The violation ledger crossed the threshold: evict every live session
  // of the offender *now*, so a blocked tenant consumes zero container
  // time past block onset (the rac-blocked-isolation invariant).
  if (trace_.enabled()) {
    const obs::SpanId mark =
        trace_.instant(kPlatformTrack, "rac_block", "rac", now);
    trace_.annotate(mark, "tenant", tenant);
  }
  // Collect first: reject_session mutates live_sessions_.
  std::vector<std::shared_ptr<SessionState>> victims;
  for (const auto& s : live_sessions_) {
    if (!s->done && s->tenant == tenant) victims.push_back(s);
  }
  for (const auto& s : victims) {
    ++s->epoch;  // neutralize every scheduled continuation
    if (s->span_session != obs::kNoSpan) {
      trace_.annotate(s->span_session, "rac_swept", std::uint64_t{1});
    }
    reject_session(s, RejectReason::kAccessDenied);
  }
}

void Platform::reject_session(std::shared_ptr<SessionState> s,
                              RejectReason reason) {
  if (s->done) return;
  sim::Simulator& simulator = server_->simulator();
  SessionScope scope(*this, *s);
  metrics_.counter("sessions.rejected").inc();
  metrics_
      .counter(std::string("sessions.rejected.") + to_string(reason))
      .inc();
  metrics_
      .counter(std::string("qos.rejected.") + qos::to_string(s->klass))
      .inc();
  // Typed reject reply: the device learns *why* it was turned away
  // (back-off hint) at the cost of one small downlink frame.  Sessions
  // whose connection never established have nowhere to send it.
  if (reason != RejectReason::kConnectFailed && s->conn != nullptr) {
    s->conn->download(net::Message{net::MessageType::kReject,
                                   net::kRejectReplyBytes, s->app_id});
  }
  end_phase(*s);
  if (s->span_session != obs::kNoSpan) {
    trace_.annotate(s->span_session, "rejected", std::uint64_t{1});
    trace_.annotate(s->span_session, "reject_reason", to_string(reason));
    trace_.end(s->span_session, simulator.now());
  }
  RequestOutcome outcome;
  outcome.request = s->request;
  outcome.phases = s->phases;
  outcome.completed_at = simulator.now();
  outcome.response = simulator.now() - s->request.arrival;
  outcome.rejected = true;
  outcome.reject_reason = reason;
  outcome.queue_wait = s->queue_wait;
  outcome.tenant = s->tenant;
  outcome.qos_class = s->klass;
  outcome.radio = config_.link.name;
  outcome.resumed = s->resumed;
  outcome.traffic = s->conn ? s->conn->traffic() : net::TrafficAccount{};
  outcome.dispatch_attempts = s->dispatch_attempts;
  outcome.connect_attempts = s->connect_attempts;
  record_outcome(s->request.sequence, std::move(outcome));
  unbind_session(*s);
  finish_session(*s);
  if (completion_observer_) {
    completion_observer_(outcomes_[s->request.sequence]);
  }
}

void Platform::unbind_session(SessionState& s) {
  if (s.computing) {
    server_->monitor().job_finished(s.klass);
    s.computing = false;
  }
  if (s.staged) {
    server_->shared_layer().release_request_files(s.request.sequence);
    s.staged = false;
  }
  if (s.env != nullptr) {
    if (s.env->inflight > 0) --s.env->inflight;
    if (!s.env->retired && s.env->ready && s.env->inflight == 0) {
      if (s.env->draining) {
        // Last in-flight session left a draining environment: reclaim.
        finish_drain(*s.env);
      } else {
        lifecycle_.transition(s.env->id, elastic::CacState::kWarmIdle,
                              server_->simulator().now());
        schedule_reclaim(*s.env);
      }
    }
    s.env = nullptr;
  }
}

void Platform::finish_session(SessionState& s) {
  s.done = true;
  ++completed_;
  if (s.rac_slot) {
    server_->access().release(s.tenant);
    s.rac_slot = false;
  }
  for (auto it = live_sessions_.begin(); it != live_sessions_.end(); ++it) {
    if (it->get() == &s) {
      live_sessions_.erase(it);
      break;
    }
  }
  if (admission_ != nullptr) {
    if (s.queued) {
      // Rejected while still waiting in a class queue (e.g. the access
      // controller blocked its app meanwhile); pull it out of the
      // scheduler so no stale id is ever echoed by pop_queued().
      admission_->abandon_queued(s.klass, s.tenant, s.request.sequence);
      queued_sessions_.erase(s.request.sequence);
      s.queued = false;
    }
    if (s.admitted) {
      admission_->release();
      s.admitted = false;
    }
    maybe_start_queued();
  }
}

void Platform::register_invariants() {
  // 1. No session is bound to a dead environment — except during the
  //    Monitor's detection window (crash reported, sweep not yet run)
  //    and for provision-failure envs, whose rejection is a scheduled
  //    zero-delay event.
  invariants_.add_invariant(
      "session-env-liveness", [this]() -> std::optional<std::string> {
        for (const auto& s : live_sessions_) {
          if (s->done || s->env == nullptr) continue;
          const Env& env = *s->env;
          if (!env.retired || env.failed) continue;
          if (server_->monitor().crash_pending(env.id)) continue;
          return "request " + std::to_string(s->request.sequence) +
                 " bound to dead env " + std::to_string(env.id);
        }
        return std::nullopt;
      });
  // 2. The AID→CID affinity map only references live containers.
  invariants_.add_invariant(
      "affinity-live", [this]() -> std::optional<std::string> {
        std::optional<std::string> violation;
        server_->warehouse().for_each_entry([&](const CacheEntry& entry) {
          if (violation.has_value()) return;
          for (const EnvId env_id : entry.containers) {
            const EnvRecord* record = server_->env_db().find(env_id);
            if (record == nullptr ||
                record->state == EnvState::kRetired) {
              violation = entry.reference + " maps to dead env " +
                          std::to_string(env_id);
              return;
            }
          }
        });
        return violation;
      });
  // 3. The shared tmpfs holds exactly the live offload files.
  invariants_.add_invariant(
      "tmpfs-accounting", [this]() -> std::optional<std::string> {
        const auto& shared = server_->shared_layer();
        if (shared.offload_io().used_bytes() == shared.staged_bytes()) {
          return std::nullopt;
        }
        return "tmpfs holds " +
               std::to_string(shared.offload_io().used_bytes()) +
               " bytes, ledger says " +
               std::to_string(shared.staged_bytes());
      });
  // 4. "Burn after reading" actually frees: one file per staged request.
  invariants_.add_invariant(
      "burn-after-reading", [this]() -> std::optional<std::string> {
        const auto& shared = server_->shared_layer();
        if (shared.offload_io().file_count() == shared.staged_count()) {
          return std::nullopt;
        }
        return std::to_string(shared.offload_io().file_count()) +
               " files for " + std::to_string(shared.staged_count()) +
               " staged requests";
      });
  // 5. Monitor job slots match the sessions actually computing.
  invariants_.add_invariant(
      "monitor-jobs", [this]() -> std::optional<std::string> {
        std::uint32_t computing = 0;
        for (const auto& s : live_sessions_) {
          if (!s->done && s->computing) ++computing;
        }
        if (computing == server_->monitor().running_jobs()) {
          return std::nullopt;
        }
        return "monitor reports " +
               std::to_string(server_->monitor().running_jobs()) +
               " jobs, " + std::to_string(computing) +
               " sessions computing";
      });
  // 6. Every environment's inflight pin count equals its bound sessions.
  invariants_.add_invariant(
      "inflight-consistency", [this]() -> std::optional<std::string> {
        for (const auto& [id, env] : envs_) {
          std::uint32_t bound = 0;
          for (const auto& s : live_sessions_) {
            if (!s->done && s->env == env.get()) ++bound;
          }
          if (bound != env->inflight) {
            return "env " + std::to_string(id) + " pins " +
                   std::to_string(env->inflight) + " sessions, " +
                   std::to_string(bound) + " bound";
          }
        }
        return std::nullopt;
      });
  // 7. The Container DB mirrors engine state: records retire exactly
  //    when their environment does, and a live, ready container-backed
  //    environment has a booted CAC underneath.
  invariants_.add_invariant(
      "db-consistency", [this]() -> std::optional<std::string> {
        for (const auto& [id, env] : envs_) {
          const EnvRecord* record = server_->env_db().find(id);
          if (record == nullptr) {
            return "env " + std::to_string(id) + " missing from DB";
          }
          const bool record_retired =
              record->state == EnvState::kRetired;
          if (record_retired != env->retired) {
            return "env " + std::to_string(id) + " retired=" +
                   (env->retired ? "1" : "0") + " but DB says " +
                   to_string(record->state);
          }
          if (!env->retired && env->ready && !env->is_vm &&
              (env->cac == nullptr || !env->cac->booted())) {
            return "env " + std::to_string(id) +
                   " serving without a booted container";
          }
        }
        return std::nullopt;
      });
  // 12. Lifecycle-state conservation: the ledger tracks every
  //     environment the engine ever provisioned, no illegal transition
  //     was ever attempted, and the ledger state matches what the
  //     engine's flags imply for each environment (docs/ELASTIC.md).
  invariants_.add_invariant(
      "lifecycle-state", [this]() -> std::optional<std::string> {
        if (const std::string& err = lifecycle_.first_error();
            !err.empty()) {
          return "lifecycle error: " + err;
        }
        if (lifecycle_.tracked_count() != envs_.size()) {
          return "lifecycle tracks " +
                 std::to_string(lifecycle_.tracked_count()) +
                 " envs, engine has " + std::to_string(envs_.size());
        }
        for (const auto& [id, env] : envs_) {
          elastic::CacState expected;
          if (env->retired) {
            expected = elastic::CacState::kReclaimed;
          } else if (env->draining) {
            expected = elastic::CacState::kDraining;
          } else if (!env->ready) {
            expected = elastic::CacState::kBooting;
          } else if (env->inflight > 0) {
            expected = elastic::CacState::kLeased;
          } else {
            expected = elastic::CacState::kWarmIdle;
          }
          if (lifecycle_.state(id) != expected) {
            return "env " + std::to_string(id) + " is " +
                   elastic::to_string(lifecycle_.state(id)) +
                   ", engine state implies " + elastic::to_string(expected);
          }
        }
        return std::nullopt;
      });
  // 13. The elastic memory budget is a hard ceiling on the warm pool:
  //     committed pool memory (booting + warm) never exceeds it.
  invariants_.add_invariant(
      "elastic-memory-budget", [this]() -> std::optional<std::string> {
        if (pool_controller_ == nullptr) return std::nullopt;
        const std::uint64_t budget =
            pool_controller_->config().memory_budget_bytes;
        if (budget == 0) return std::nullopt;
        std::uint64_t committed = 0;
        for (const auto& [id, env] : envs_) {
          (void)id;
          if (env->pool && !env->retired && !env->draining) {
            committed += env->memory_bytes;
          }
        }
        if (committed <= budget) return std::nullopt;
        return "warm pool commits " + std::to_string(committed) +
               " bytes, budget is " + std::to_string(budget);
      });
  // 14. A blocked tenant consumes zero container time after block onset:
  //     the on_block sweep leaves no live session of a tenant inside its
  //     block window (docs/RAC.md).
  invariants_.add_invariant(
      "rac-blocked-isolation", [this]() -> std::optional<std::string> {
        const sim::SimTime now = server_->simulator().now();
        for (const auto& s : live_sessions_) {
          if (s->done) continue;
          if (server_->access().blocked_at(s->tenant, now)) {
            return "request " + std::to_string(s->request.sequence) +
                   " of blocked tenant " + s->tenant + " still live";
          }
        }
        return std::nullopt;
      });
  if (admission_ == nullptr) return;
  // 8. The class queues never exceed their capacity, and the scheduler's
  //    depth matches the sessions the platform is tracking as queued.
  invariants_.add_invariant(
      "admission-queue-bound", [this]() -> std::optional<std::string> {
        std::uint32_t queued = 0;
        for (const auto& [sequence, s] : queued_sessions_) {
          (void)sequence;
          if (!s->done && s->queued) ++queued;
        }
        if (queued != admission_->queue_depth()) {
          return "scheduler holds " +
                 std::to_string(admission_->queue_depth()) +
                 " queued, platform tracks " + std::to_string(queued);
        }
        const qos::QosScheduler& scheduler = admission_->scheduler();
        for (const qos::PriorityClass klass : qos::kAllClasses) {
          if (scheduler.depth(klass) > scheduler.capacity(klass)) {
            return std::string(qos::to_string(klass)) + " lane holds " +
                   std::to_string(scheduler.depth(klass)) +
                   " sessions, capacity " +
                   std::to_string(scheduler.capacity(klass));
          }
        }
        return std::nullopt;
      });
  // 9. In-service accounting: the controller's slots equal the admitted
  //    live sessions, and never exceed the configured ceiling.
  invariants_.add_invariant(
      "admission-in-service", [this]() -> std::optional<std::string> {
        std::uint32_t admitted = 0;
        for (const auto& s : live_sessions_) {
          if (!s->done && s->admitted) ++admitted;
        }
        if (admitted != admission_->in_service()) {
          return "controller ledger says " +
                 std::to_string(admission_->in_service()) +
                 " in service, " + std::to_string(admitted) +
                 " sessions hold slots";
        }
        if (admitted > admission_->max_in_service()) {
          return std::to_string(admitted) +
                 " in-service sessions exceed the limit of " +
                 std::to_string(admission_->max_in_service());
        }
        return std::nullopt;
      });
  // 10. DRR bookkeeping conserves quanta: per tenant per lane,
  //     granted == served + live deficit + forfeited (docs/QOS.md).
  invariants_.add_invariant(
      "qos-drr-conservation", [this]() -> std::optional<std::string> {
        return admission_->scheduler().check_conservation();
      });
  // 11. Anti-starvation promotion is bounded: a run of lower-class pops
  //     while a higher lane waits never exceeds the configured burst.
  invariants_.add_invariant(
      "qos-priority-burst", [this]() -> std::optional<std::string> {
        const qos::QosScheduler& scheduler = admission_->scheduler();
        const std::uint32_t burst =
            std::max(1u, scheduler.config().starvation_burst);
        if (scheduler.max_lower_run() <= burst) return std::nullopt;
        return "lower-class run of " +
               std::to_string(scheduler.max_lower_run()) +
               " exceeds the starvation burst of " + std::to_string(burst);
      });
}

// ---------------------------------------------------------------------

double Platform::memory_time_byte_seconds() const {
  const sim::SimTime now =
      server_ ? static_cast<const CloudServer&>(*server_).simulator().now()
              : 0;
  double sum = 0;
  for (const auto& [id, env] : envs_) {
    (void)id;
    if (env->memory_bytes == 0) continue;
    const sim::SimTime end =
        env->commit_end >= 0 ? env->commit_end : now;
    sum += static_cast<double>(env->memory_bytes) *
           sim::to_seconds(end - env->commit_start);
  }
  return sum;
}

ProvisionStats Platform::measure_provision() {
  assert(envs_.empty() && "measure_provision needs a fresh platform");
  config_.env_idle_timeout = 0;  // a probe environment is never reclaimed
  sim::Simulator& simulator = server_->simulator();
  Env& env = provision_env("probe", simulator.now());
  simulator.run();
  assert(env.ready);

  ProvisionStats stats;
  stats.setup_time = env.ready_at - env.provision_start;
  const Calibration& cal = server_->calibration();
  if (env.is_vm) {
    stats.memory_configured = cal.vm_memory;
    stats.memory_usage =
        android::device_userspace_boot(android::OsProfile::kStock)
            .boot_memory;
  } else {
    stats.memory_configured = config_.customized_os
                                  ? cal.cac_opt_memory
                                  : cal.cac_plain_memory;
    stats.memory_usage = env.cac->boot_memory();
  }
  stats.disk_bytes = env.disk_bytes;
  stats.shared_disk_bytes = config_.shared_resource_layer
                                ? server_->shared_layer().shared_bytes()
                                : 0;
  return stats;
}

}  // namespace rattrap::core
