// Admission control for the Dispatcher front door.
//
// The paper's density argument only holds while the server is protected:
// CloneCloud-style offloading collapses precisely when the cloud side
// saturates, so a production Dispatcher must bound what it accepts
// instead of letting an unbounded session backlog melt the host.  Three
// mechanisms, all deterministic:
//
//   * a bounded accept queue — sessions the server cannot start yet wait
//     in FIFO order; when the queue is full, new arrivals are shed;
//   * per-tenant token buckets — each application (the tenant sharing
//     the platform) is limited to a sustained request rate plus a burst
//     allowance, so one chatty app cannot starve the rest;
//   * utilization-based load shedding — when the Monitor reports the
//     compute plane saturated beyond a threshold, arrivals are rejected
//     outright with a typed reply the device can back off on.
//
// The controller also derives a backpressure signal in [0, 1] from queue
// occupancy and Monitor utilization; closed-loop load generators stretch
// their think times by it (docs/LOADGEN.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/monitor.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace rattrap::core {

/// Why a session ended without executing (the typed reject reply).
enum class RejectReason : std::uint8_t {
  kNone = 0,           ///< not rejected
  kAccessDenied,       ///< Request-based Access Controller block (§IV-E)
  kQueueFull,          ///< bounded accept queue at capacity
  kRateLimited,        ///< tenant token bucket empty
  kOverloaded,         ///< utilization shed threshold exceeded
  kCapacity,           ///< environment provisioning failed (host full)
  kConnectFailed,      ///< connection-attempt budget exhausted
  kRedispatchExhausted,///< crashed-environment re-dispatch budget spent
  kStranded,           ///< still in flight when the simulation drained
};

[[nodiscard]] const char* to_string(RejectReason reason);

struct AdmissionConfig {
  /// Master switch; disabled keeps the pre-admission behaviour (every
  /// connected session dispatches immediately).
  bool enabled = false;

  /// Sessions dispatched concurrently (in service). 0 derives the limit
  /// from the calibration: 4 × server cores.
  std::uint32_t max_in_service = 0;

  /// Bounded accept queue capacity; arrivals beyond it are shed. 0
  /// disables queueing entirely (admit-or-reject).
  std::uint32_t queue_capacity = 64;

  /// Per-tenant sustained request rate (req/s); 0 disables rate
  /// limiting.
  double tenant_rate_per_s = 0.0;

  /// Token bucket capacity (burst allowance); 0 defaults to
  /// max(1, tenant_rate_per_s).
  double tenant_burst = 0.0;

  /// Shed arrivals while Monitor utilization (running jobs / cores)
  /// meets or exceeds this fraction; 0 disables shedding.  Values > 1
  /// tolerate oversubscription before shedding.
  double shed_utilization = 0.0;
};

/// Deterministic token bucket over simulated time.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst)
      : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst) {}

  /// Refills by elapsed virtual time and takes one token if available.
  bool try_take(sim::SimTime now);

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double rate_per_s_;
  double burst_;
  double tokens_;
  sim::SimTime last_refill_ = 0;
};

class AdmissionController {
 public:
  enum class Verdict : std::uint8_t {
    kAdmit = 0,
    kEnqueue,
    kRejectQueueFull,
    kRejectRateLimited,
    kRejectOverloaded,
  };

  AdmissionController(const AdmissionConfig& config,
                      const MonitorScheduler& monitor,
                      std::uint32_t server_cores);

  /// Decides one arrival from `tenant` at virtual time `now`.  kAdmit
  /// and kEnqueue update in-service / queue-depth accounting; the caller
  /// owns the actual queued session objects and must pair every kAdmit
  /// with release() and every kEnqueue with either start_queued() or
  /// abandon_queued().
  Verdict offer(const std::string& tenant, sim::SimTime now);

  /// An admitted (in-service) session finished; frees its slot.
  void release();

  /// True when a dispatch slot is free and the accept queue is
  /// non-empty — the caller should pop its oldest queued session and
  /// call start_queued() for it.
  [[nodiscard]] bool can_start_queued() const {
    return queue_depth_ > 0 && in_service_ < max_in_service_;
  }

  /// Moves one queued session into service (queue → in-service).
  void start_queued(sim::SimDuration waited);

  /// A queued session evaporated without starting (end-of-run drain).
  void abandon_queued();

  /// Backpressure in [0, 1]: max of queue occupancy and how far Monitor
  /// utilization overshoots the shed threshold (or 1.0× cores when
  /// shedding is off).  0 when admission control is disabled.
  [[nodiscard]] double backpressure() const;

  [[nodiscard]] std::uint32_t in_service() const { return in_service_; }
  [[nodiscard]] std::uint32_t queue_depth() const { return queue_depth_; }
  [[nodiscard]] std::uint32_t queue_capacity() const {
    return queue_capacity_;
  }
  [[nodiscard]] std::uint32_t max_in_service() const {
    return max_in_service_;
  }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

  /// Attaches a metrics registry (admission.* instruments,
  /// docs/LOADGEN.md). nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void update_gauges();

  AdmissionConfig config_;
  const MonitorScheduler& monitor_;
  std::uint32_t max_in_service_;
  std::uint32_t queue_capacity_;
  std::uint32_t in_service_ = 0;
  std::uint32_t queue_depth_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::map<std::string, TokenBucket> buckets_;  ///< by tenant (app id)

  obs::Counter* metric_admitted_ = nullptr;
  obs::Counter* metric_enqueued_ = nullptr;
  obs::Counter* metric_rejected_queue_full_ = nullptr;
  obs::Counter* metric_rejected_rate_limited_ = nullptr;
  obs::Counter* metric_rejected_overloaded_ = nullptr;
  obs::Gauge* metric_queue_depth_ = nullptr;
  obs::Gauge* metric_queue_peak_ = nullptr;
  obs::Gauge* metric_backpressure_ = nullptr;
  obs::Histogram* metric_queue_wait_ms_ = nullptr;
  obs::Histogram* metric_queue_depth_samples_ = nullptr;
};

}  // namespace rattrap::core
