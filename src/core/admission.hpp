// Admission control for the Dispatcher front door.
//
// The paper's density argument only holds while the server is protected:
// CloneCloud-style offloading collapses precisely when the cloud side
// saturates, so a production Dispatcher must bound what it accepts
// instead of letting an unbounded session backlog melt the host.  The
// mechanisms, all deterministic:
//
//   * class-aware bounded accept queues — sessions the server cannot
//     start yet wait in a QosScheduler (priority classes + weighted DRR
//     across tenants, docs/QOS.md); when a class lane is full, new
//     arrivals of that class are shed.  With QoS disabled this is the
//     single FIFO of the original front door.
//   * per-tenant token buckets — each tenant sharing the platform is
//     limited to a sustained request rate plus a burst allowance, so one
//     chatty app cannot starve the rest;
//   * utilization-based load shedding — when the Monitor reports the
//     compute plane saturated beyond a (per-class) threshold, arrivals
//     are rejected outright with a typed reply the device can back off
//     on.
//
// The controller also derives a backpressure signal in [0, 1] from queue
// occupancy and Monitor utilization; closed-loop load generators stretch
// their think times by it (docs/LOADGEN.md).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/monitor.hpp"
#include "core/offload.hpp"
#include "core/qos/scheduler.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace rattrap::core {

struct AdmissionConfig {
  /// Master switch; disabled keeps the pre-admission behaviour (every
  /// connected session dispatches immediately).
  bool enabled = false;

  /// Sessions dispatched concurrently (in service). 0 derives the limit
  /// from the calibration: 4 × server cores.
  std::uint32_t max_in_service = 0;

  /// Bounded accept-queue capacity; arrivals beyond it are shed. With
  /// QoS enabled this is the default per-class lane capacity (overridden
  /// per class by qos.<class>.queue_capacity).
  std::uint32_t queue_capacity = 64;

  /// Per-tenant sustained request rate (req/s); 0 disables rate
  /// limiting.
  double tenant_rate_per_s = 0.0;

  /// Token bucket capacity (burst allowance); 0 defaults to
  /// max(1, tenant_rate_per_s).
  double tenant_burst = 0.0;

  /// Shed arrivals while Monitor utilization (running jobs / cores)
  /// meets or exceeds this fraction; 0 disables shedding.  Values > 1
  /// tolerate oversubscription before shedding.  Per-class overrides live
  /// in qos.<class>.shed_utilization.
  double shed_utilization = 0.0;

  /// Max entries one tenant may hold across the class queues at once; 0
  /// disables the quota.  A class-flooding tenant fills its own
  /// allowance and is shed with kQuotaExceeded while other tenants'
  /// lanes stay open (docs/RAC.md).
  std::uint32_t tenant_queue_quota = 0;

  /// Class scheduling policy (docs/QOS.md).  Disabled degrades the
  /// accept queue to the legacy single FIFO.
  qos::QosConfig qos;
};

/// Deterministic token bucket over simulated time.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst)
      : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst) {}

  /// Refills by elapsed virtual time and takes one token if available.
  bool try_take(sim::SimTime now);

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double rate_per_s_;
  double burst_;
  double tokens_;
  sim::SimTime last_refill_ = 0;
};

class AdmissionController {
 public:
  /// How an accepted arrival proceeds.
  enum class Admitted : std::uint8_t {
    kDispatch = 0,  ///< holds an in-service slot; dispatch immediately
    kQueued,        ///< parked in the class queue; popped when a slot frees
  };

  /// One arrival at the front door.
  struct Offer {
    std::string tenant;
    qos::PriorityClass klass = qos::PriorityClass::kStandard;
    /// Caller-owned id for the queued item (the platform uses the request
    /// sequence); echoed back by pop_queued().
    std::uint64_t id = 0;
  };

  AdmissionController(const AdmissionConfig& config,
                      const MonitorScheduler& monitor,
                      std::uint32_t server_cores);

  /// Decides one arrival at virtual time `now`.  The typed error carries
  /// the reject reason (kRateLimited / kOverloaded / kQueueFull); kAdmit
  /// results update in-service or queue accounting.  The caller owns the
  /// session objects and must pair every kDispatch with release() and
  /// every kQueued with either pop_queued() or abandon_queued().
  Result<Admitted> offer(const Offer& offer, sim::SimTime now);

  /// An admitted (in-service) session finished; frees its slot.
  void release();

  /// True when a dispatch slot is free and some class queue is
  /// non-empty — the caller should pop_queued() and dispatch the result.
  [[nodiscard]] bool can_start_queued() const {
    return scheduler_.total_depth() > 0 && in_service_ < max_in_service_;
  }

  /// Pops the next queued session under priority + DRR and moves it into
  /// service; nullopt when nothing is queued or no slot is free.
  std::optional<qos::QosScheduler::Popped> pop_queued(sim::SimTime now);

  /// A queued session evaporated without starting (finished while
  /// waiting, or the end-of-run drain); removes it from its class queue.
  void abandon_queued(qos::PriorityClass klass, const std::string& tenant,
                      std::uint64_t id);

  /// DRR weight for `tenant` within its class (docs/QOS.md).
  void set_tenant_weight(const std::string& tenant, std::uint32_t weight) {
    scheduler_.set_tenant_weight(tenant, weight);
  }

  /// Backpressure in [0, 1]: max of queue occupancy and how far Monitor
  /// utilization overshoots the shed threshold (or 1.0× cores when
  /// shedding is off).  0 when admission control is disabled.
  [[nodiscard]] double backpressure() const;

  [[nodiscard]] std::uint32_t in_service() const { return in_service_; }
  [[nodiscard]] std::uint32_t queue_depth() const {
    return static_cast<std::uint32_t>(scheduler_.total_depth());
  }
  [[nodiscard]] std::uint32_t queue_capacity() const {
    return queue_capacity_;
  }
  [[nodiscard]] std::uint32_t max_in_service() const {
    return max_in_service_;
  }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

  /// The class scheduler (queue introspection for invariants and tests).
  [[nodiscard]] qos::QosScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const qos::QosScheduler& scheduler() const {
    return scheduler_;
  }

  /// Attaches a metrics registry (admission.* and qos.* instruments,
  /// docs/LOADGEN.md, docs/QOS.md). nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void update_gauges();

  AdmissionConfig config_;
  const MonitorScheduler& monitor_;
  std::uint32_t max_in_service_;
  std::uint32_t queue_capacity_;
  std::uint32_t in_service_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::map<std::string, TokenBucket> buckets_;  ///< by tenant
  qos::QosScheduler scheduler_;

  obs::Counter* metric_admitted_ = nullptr;
  obs::Counter* metric_enqueued_ = nullptr;
  obs::Counter* metric_rejected_queue_full_ = nullptr;
  obs::Counter* metric_rejected_rate_limited_ = nullptr;
  obs::Counter* metric_rejected_overloaded_ = nullptr;
  obs::Counter* metric_rejected_tenant_quota_ = nullptr;
  obs::Gauge* metric_queue_depth_ = nullptr;
  obs::Gauge* metric_queue_peak_ = nullptr;
  obs::Gauge* metric_backpressure_ = nullptr;
  obs::Histogram* metric_queue_wait_ms_ = nullptr;
  obs::Histogram* metric_queue_depth_samples_ = nullptr;
};

}  // namespace rattrap::core
