#include "core/admission.hpp"

#include <algorithm>

namespace rattrap::core {

bool TokenBucket::try_take(sim::SimTime now) {
  if (now > last_refill_) {
    tokens_ = std::min(
        burst_, tokens_ + rate_per_s_ * sim::to_seconds(now - last_refill_));
    last_refill_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         const MonitorScheduler& monitor,
                                         std::uint32_t server_cores)
    : config_(config),
      monitor_(monitor),
      max_in_service_(config.max_in_service > 0 ? config.max_in_service
                                                : 4 * server_cores),
      queue_capacity_(config.queue_capacity),
      scheduler_(config.qos, config.queue_capacity) {}

void AdmissionController::set_metrics(obs::MetricsRegistry* metrics) {
  scheduler_.set_metrics(metrics);
  if (metrics == nullptr) {
    metric_admitted_ = metric_enqueued_ = metric_rejected_queue_full_ =
        metric_rejected_rate_limited_ = metric_rejected_overloaded_ =
            metric_rejected_tenant_quota_ = nullptr;
    metric_queue_depth_ = metric_queue_peak_ = metric_backpressure_ = nullptr;
    metric_queue_wait_ms_ = metric_queue_depth_samples_ = nullptr;
    return;
  }
  metric_admitted_ = &metrics->counter("admission.admitted");
  metric_enqueued_ = &metrics->counter("admission.enqueued");
  metric_rejected_queue_full_ =
      &metrics->counter("admission.rejected.queue_full");
  metric_rejected_rate_limited_ =
      &metrics->counter("admission.rejected.rate_limited");
  metric_rejected_overloaded_ =
      &metrics->counter("admission.rejected.overloaded");
  metric_rejected_tenant_quota_ =
      &metrics->counter("admission.rejected.tenant_quota");
  metric_queue_depth_ = &metrics->gauge("admission.queue.depth");
  metric_queue_peak_ = &metrics->gauge("admission.queue.peak");
  metric_backpressure_ = &metrics->gauge("admission.backpressure");
  metric_queue_wait_ms_ = &metrics->histogram("admission.queue.wait_ms");
  metric_queue_depth_samples_ = &metrics->histogram(
      "admission.queue.depth_samples", obs::queue_depth_buckets());
}

Result<AdmissionController::Admitted> AdmissionController::offer(
    const Offer& offer, sim::SimTime now) {
  if (config_.tenant_rate_per_s > 0) {
    auto it = buckets_.find(offer.tenant);
    if (it == buckets_.end()) {
      const double burst = config_.tenant_burst > 0
                               ? config_.tenant_burst
                               : std::max(1.0, config_.tenant_rate_per_s);
      it = buckets_
               .emplace(offer.tenant,
                        TokenBucket(config_.tenant_rate_per_s, burst))
               .first;
    }
    if (!it->second.try_take(now)) {
      ++rejected_;
      if (metric_rejected_rate_limited_ != nullptr) {
        metric_rejected_rate_limited_->inc();
      }
      return RejectReason::kRateLimited;
    }
  }
  // Per-class shed threshold: interactive traffic can be configured to
  // survive utilization levels that shed batch (docs/QOS.md).
  const double shed =
      scheduler_.shed_threshold(offer.klass, config_.shed_utilization);
  if (shed > 0 && monitor_.load_fraction() >= shed) {
    ++rejected_;
    if (metric_rejected_overloaded_ != nullptr) {
      metric_rejected_overloaded_->inc();
    }
    return RejectReason::kOverloaded;
  }
  if (in_service_ < max_in_service_) {
    ++in_service_;
    ++admitted_;
    if (metric_admitted_ != nullptr) metric_admitted_->inc();
    update_gauges();
    return Admitted::kDispatch;
  }
  if (config_.tenant_queue_quota > 0 &&
      scheduler_.tenant_depth(offer.tenant) >= config_.tenant_queue_quota) {
    ++rejected_;
    if (metric_rejected_tenant_quota_ != nullptr) {
      metric_rejected_tenant_quota_->inc();
    }
    return RejectReason::kQuotaExceeded;
  }
  const Result<std::uint32_t> pushed =
      scheduler_.push(offer.klass, offer.tenant, offer.id, now);
  if (!pushed) {
    ++rejected_;
    if (metric_rejected_queue_full_ != nullptr) {
      metric_rejected_queue_full_->inc();
    }
    return pushed.error();
  }
  if (metric_enqueued_ != nullptr) metric_enqueued_->inc();
  if (metric_queue_depth_samples_ != nullptr) {
    metric_queue_depth_samples_->observe(
        static_cast<double>(scheduler_.total_depth()));
  }
  if (metric_queue_peak_ != nullptr) {
    metric_queue_peak_->set(
        std::max(metric_queue_peak_->value(),
                 static_cast<double>(scheduler_.total_depth())));
  }
  update_gauges();
  return Admitted::kQueued;
}

void AdmissionController::release() {
  if (in_service_ > 0) --in_service_;
  update_gauges();
}

std::optional<qos::QosScheduler::Popped> AdmissionController::pop_queued(
    sim::SimTime now) {
  if (!can_start_queued()) return std::nullopt;
  std::optional<qos::QosScheduler::Popped> popped = scheduler_.pop(now);
  if (!popped) return std::nullopt;
  ++in_service_;
  ++admitted_;
  if (metric_admitted_ != nullptr) metric_admitted_->inc();
  if (metric_queue_wait_ms_ != nullptr) {
    metric_queue_wait_ms_->observe(sim::to_millis(popped->waited));
  }
  update_gauges();
  return popped;
}

void AdmissionController::abandon_queued(qos::PriorityClass klass,
                                         const std::string& tenant,
                                         std::uint64_t id) {
  scheduler_.remove(klass, tenant, id);
  update_gauges();
}

double AdmissionController::backpressure() const {
  if (!config_.enabled) return 0.0;
  double bp = 0.0;
  if (queue_capacity_ > 0) {
    bp = static_cast<double>(scheduler_.total_depth()) /
         static_cast<double>(queue_capacity_);
  }
  // Utilization component: 0 at the shed threshold's lower half, 1 at
  // the threshold itself (or at 1.0× cores when shedding is off).
  const double threshold =
      config_.shed_utilization > 0 ? config_.shed_utilization : 1.0;
  const double load = monitor_.load_fraction() / threshold;
  if (load > 0.5) bp = std::max(bp, std::min(1.0, 2.0 * (load - 0.5)));
  return std::clamp(bp, 0.0, 1.0);
}

void AdmissionController::update_gauges() {
  if (metric_queue_depth_ != nullptr) {
    metric_queue_depth_->set(static_cast<double>(scheduler_.total_depth()));
  }
  if (metric_backpressure_ != nullptr) {
    metric_backpressure_->set(backpressure());
  }
}

}  // namespace rattrap::core
