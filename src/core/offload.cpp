#include "core/offload.hpp"

#include <algorithm>

namespace rattrap::core {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kAccessDenied:
      return "access_denied";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kRateLimited:
      return "rate_limited";
    case RejectReason::kOverloaded:
      return "overloaded";
    case RejectReason::kCapacity:
      return "capacity";
    case RejectReason::kConnectFailed:
      return "connect_failed";
    case RejectReason::kRedispatchExhausted:
      return "redispatch_exhausted";
    case RejectReason::kStranded:
      return "stranded";
    case RejectReason::kInvalidConfig:
      return "invalid_config";
    case RejectReason::kQuotaExceeded:
      return "quota_exceeded";
  }
  return "?";
}

double offload_energy_mj(const PhaseBreakdown& phases,
                         sim::SimDuration upload_time,
                         sim::SimDuration download_time,
                         const device::RadioProfile& radio) {
  device::EnergyMeter meter(device::phone_cpu(), radio);
  meter.add_wait(phases.network_connection);
  meter.add_wait(phases.runtime_preparation);
  meter.add_tx(upload_time);
  // Post-upload tail: the radio lingers in its high-power state while the
  // cloud computes. A long computation absorbs the whole tail; a short
  // one rolls straight into the result download. The tail window burns
  // tail power instead of idle power.
  const sim::SimDuration upload_tail =
      std::min(radio.tail_time, phases.computation);
  meter.add_wait(phases.computation - upload_tail);
  meter.add_rx(download_time);
  meter.add_radio_tail();  // full tail after the final download
  return meter.millijoules() + radio.tail_mw * sim::to_seconds(upload_tail);
}

}  // namespace rattrap::core
