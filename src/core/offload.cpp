#include "core/offload.hpp"

#include <algorithm>

namespace rattrap::core {

const char* to_string(RejectReason reason) {
  switch (reason) {
#define RATTRAP_REJECT_TO_STRING(name, str, wire) \
  case RejectReason::name:                        \
    return str;
    RATTRAP_REJECT_REASONS(RATTRAP_REJECT_TO_STRING)
#undef RATTRAP_REJECT_TO_STRING
  }
  return "?";
}

std::optional<RejectReason> reject_reason_from_wire(std::uint8_t code) {
  switch (code) {
#define RATTRAP_REJECT_FROM_WIRE(name, str, wire) \
  case (wire):                                    \
    return RejectReason::name;
    RATTRAP_REJECT_REASONS(RATTRAP_REJECT_FROM_WIRE)
#undef RATTRAP_REJECT_FROM_WIRE
    default:
      return std::nullopt;
  }
}

double offload_energy_mj(const PhaseBreakdown& phases,
                         sim::SimDuration upload_time,
                         sim::SimDuration download_time,
                         const device::RadioProfile& radio) {
  device::EnergyMeter meter(device::phone_cpu(), radio);
  meter.add_wait(phases.network_connection);
  meter.add_wait(phases.runtime_preparation);
  meter.add_tx(upload_time);
  // Post-upload tail: the radio lingers in its high-power state while the
  // cloud computes. A long computation absorbs the whole tail; a short
  // one rolls straight into the result download. The tail window burns
  // tail power instead of idle power.
  const sim::SimDuration upload_tail =
      std::min(radio.tail_time, phases.computation);
  meter.add_wait(phases.computation - upload_tail);
  meter.add_rx(download_time);
  meter.add_radio_tail();  // full tail after the final download
  return meter.millijoules() + radio.tail_mw * sim::to_seconds(upload_tail);
}

}  // namespace rattrap::core
