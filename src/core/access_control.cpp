#include "core/access_control.hpp"

namespace rattrap::core {

const char* to_string(Operation op) {
  switch (op) {
    case Operation::kReadOffloadFile:
      return "read-offload-file";
    case Operation::kWriteOffloadFile:
      return "write-offload-file";
    case Operation::kReadSharedLayer:
      return "read-shared-layer";
    case Operation::kWriteSharedLayer:
      return "write-shared-layer";
    case Operation::kReadWarehouse:
      return "read-warehouse";
    case Operation::kReadForeignCode:
      return "read-foreign-code";
    case Operation::kNetworkEgress:
      return "network-egress";
    case Operation::kBinderCall:
      return "binder-call";
  }
  return "?";
}

const char* to_string(AccessDeny deny) {
  switch (deny) {
    case AccessDeny::kNone:
      return "none";
    case AccessDeny::kBlocked:
      return "blocked";
    case AccessDeny::kViolation:
      return "violation";
    case AccessDeny::kQuota:
      return "quota";
  }
  return "?";
}

std::set<Operation> RequestAccessController::default_grants() {
  return {Operation::kReadOffloadFile, Operation::kWriteOffloadFile,
          Operation::kReadSharedLayer, Operation::kReadWarehouse,
          Operation::kBinderCall};
}

void RequestAccessController::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_analyzed_ = nullptr;
    metric_violations_ = nullptr;
    metric_blocks_ = nullptr;
    metric_unblocks_ = nullptr;
    metric_denied_blocked_ = nullptr;
    metric_denied_violation_ = nullptr;
    metric_denied_quota_ = nullptr;
    metric_blocked_tenants_ = nullptr;
    return;
  }
  metric_analyzed_ = &metrics->counter("rac.analyzed");
  metric_violations_ = &metrics->counter("rac.violations");
  metric_blocks_ = &metrics->counter("rac.blocks");
  metric_unblocks_ = &metrics->counter("rac.unblocks");
  metric_denied_blocked_ = &metrics->counter("rac.denied.blocked");
  metric_denied_violation_ = &metrics->counter("rac.denied.violation");
  metric_denied_quota_ = &metrics->counter("rac.denied.quota");
  metric_blocked_tenants_ = &metrics->gauge("rac.blocked_tenants");
}

bool RequestAccessController::ensure_analyzed(std::string_view app_id) {
  if (tables_.contains(app_id)) return false;
  PermissionTable table;
  table.allowed = default_grants();
  tables_.emplace(std::string(app_id), std::move(table));
  if (metric_analyzed_ != nullptr) metric_analyzed_->inc();
  return true;
}

TenantLedger& RequestAccessController::ledger_for(const std::string& tenant) {
  return ledgers_[tenant];
}

void RequestAccessController::count_deny(AccessDeny deny) {
  switch (deny) {
    case AccessDeny::kNone:
      break;
    case AccessDeny::kBlocked:
      if (metric_denied_blocked_ != nullptr) metric_denied_blocked_->inc();
      break;
    case AccessDeny::kViolation:
      if (metric_denied_violation_ != nullptr) metric_denied_violation_->inc();
      break;
    case AccessDeny::kQuota:
      if (metric_denied_quota_ != nullptr) metric_denied_quota_->inc();
      break;
  }
}

void RequestAccessController::maybe_unblock(const std::string& tenant,
                                            TenantLedger& ledger,
                                            sim::SimTime now) {
  if (!ledger.blocked || now < ledger.blocked_until) return;
  ledger.blocked = false;
  ledger.blocked_until = 0;
  ledger.violations = 0;  // the penalty wipes the ledger; service restored
  ++ledger.unblocks;
  --blocked_count_;
  if (metric_unblocks_ != nullptr) metric_unblocks_->inc();
  if (metric_blocked_tenants_ != nullptr) {
    metric_blocked_tenants_->set(static_cast<double>(blocked_count_));
  }
  if (on_unblock_) on_unblock_(tenant, now);
}

void RequestAccessController::block(const std::string& tenant,
                                    TenantLedger& ledger, sim::SimTime now) {
  ledger.blocked = true;
  ledger.blocked_until = config_.block_duration > 0
                             ? now + config_.block_duration
                             : sim::kTimeInfinity;
  ++ledger.blocks;
  ++blocked_count_;
  if (metric_blocks_ != nullptr) metric_blocks_->inc();
  if (metric_blocked_tenants_ != nullptr) {
    metric_blocked_tenants_->set(static_cast<double>(blocked_count_));
  }
  if (on_block_) on_block_(tenant, now);
}

AccessDeny RequestAccessController::check(std::string_view app_id,
                                          const std::string& tenant,
                                          Operation op, sim::SimTime now) {
  ensure_analyzed(app_id);
  TenantLedger& ledger = ledger_for(tenant);
  maybe_unblock(tenant, ledger, now);
  if (ledger.blocked) {
    count_deny(AccessDeny::kBlocked);
    return AccessDeny::kBlocked;
  }
  const auto& table = tables_.find(app_id)->second;
  if (table.allowed.contains(op)) return AccessDeny::kNone;
  ++ledger.violations;
  ++ledger.total_violations;
  if (metric_violations_ != nullptr) metric_violations_->inc();
  count_deny(AccessDeny::kViolation);
  if (ledger.violations >= config_.violation_threshold) {
    block(tenant, ledger, now);
  }
  return AccessDeny::kViolation;
}

AccessDeny RequestAccessController::allow_open(const std::string& tenant,
                                               sim::SimTime now) {
  TenantLedger& ledger = ledger_for(tenant);
  maybe_unblock(tenant, ledger, now);
  if (ledger.blocked) {
    count_deny(AccessDeny::kBlocked);
    return AccessDeny::kBlocked;
  }
  return AccessDeny::kNone;
}

AccessDeny RequestAccessController::admit(const std::string& tenant,
                                          sim::SimTime now) {
  TenantLedger& ledger = ledger_for(tenant);
  maybe_unblock(tenant, ledger, now);
  if (ledger.blocked) {
    count_deny(AccessDeny::kBlocked);
    return AccessDeny::kBlocked;
  }
  if (config_.tenant_quota > 0 && ledger.in_flight >= config_.tenant_quota) {
    count_deny(AccessDeny::kQuota);
    return AccessDeny::kQuota;
  }
  ++ledger.in_flight;
  return AccessDeny::kNone;
}

void RequestAccessController::release(const std::string& tenant) {
  const auto it = ledgers_.find(tenant);
  if (it == ledgers_.end() || it->second.in_flight == 0) return;
  --it->second.in_flight;
}

bool RequestAccessController::is_blocked(const std::string& tenant,
                                         sim::SimTime now) {
  const auto it = ledgers_.find(tenant);
  if (it == ledgers_.end()) return false;
  maybe_unblock(tenant, it->second, now);
  return it->second.blocked;
}

bool RequestAccessController::blocked_at(const std::string& tenant,
                                         sim::SimTime now) const {
  const auto it = ledgers_.find(tenant);
  if (it == ledgers_.end() || !it->second.blocked) return false;
  return now < it->second.blocked_until;
}

std::uint32_t RequestAccessController::violations(
    const std::string& tenant) const {
  const auto it = ledgers_.find(tenant);
  return it == ledgers_.end() ? 0 : it->second.violations;
}

const TenantLedger* RequestAccessController::ledger(
    const std::string& tenant) const {
  const auto it = ledgers_.find(tenant);
  return it == ledgers_.end() ? nullptr : &it->second;
}

bool RequestAccessController::analyzed(std::string_view app_id) const {
  return tables_.contains(app_id);
}

}  // namespace rattrap::core
