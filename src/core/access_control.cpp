#include "core/access_control.hpp"

namespace rattrap::core {

const char* to_string(Operation op) {
  switch (op) {
    case Operation::kReadOffloadFile:
      return "read-offload-file";
    case Operation::kWriteOffloadFile:
      return "write-offload-file";
    case Operation::kReadSharedLayer:
      return "read-shared-layer";
    case Operation::kWriteSharedLayer:
      return "write-shared-layer";
    case Operation::kReadWarehouse:
      return "read-warehouse";
    case Operation::kReadForeignCode:
      return "read-foreign-code";
    case Operation::kNetworkEgress:
      return "network-egress";
    case Operation::kBinderCall:
      return "binder-call";
  }
  return "?";
}

std::set<Operation> RequestAccessController::default_grants() {
  return {Operation::kReadOffloadFile, Operation::kWriteOffloadFile,
          Operation::kReadSharedLayer, Operation::kReadWarehouse,
          Operation::kBinderCall};
}

bool RequestAccessController::ensure_analyzed(std::string_view app_id) {
  if (tables_.contains(app_id)) return false;
  PermissionTable table;
  table.allowed = default_grants();
  tables_.emplace(std::string(app_id), std::move(table));
  return true;
}

bool RequestAccessController::check(std::string_view app_id, Operation op) {
  if (blocked_.contains(app_id)) return false;
  ensure_analyzed(app_id);
  auto& table = tables_.find(app_id)->second;
  if (table.allowed.contains(op)) return true;
  ++table.violations;
  if (table.violations >= threshold_) {
    blocked_.emplace(app_id);
  }
  return false;
}

bool RequestAccessController::is_blocked(std::string_view app_id) const {
  return blocked_.contains(app_id);
}

std::uint32_t RequestAccessController::violations(
    std::string_view app_id) const {
  const auto it = tables_.find(app_id);
  return it == tables_.end() ? 0 : it->second.violations;
}

bool RequestAccessController::analyzed(std::string_view app_id) const {
  return tables_.contains(app_id);
}

}  // namespace rattrap::core
