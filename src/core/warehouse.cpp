#include "core/warehouse.hpp"

#include <cassert>
#include <utility>

namespace rattrap::core {

void AppWarehouse::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_hits_ = metric_misses_ = metric_evictions_ = nullptr;
    metric_stored_bytes_ = nullptr;
    return;
  }
  metric_hits_ = &metrics->counter("warehouse.hits");
  metric_misses_ = &metrics->counter("warehouse.misses");
  metric_evictions_ = &metrics->counter("warehouse.evictions");
  metric_stored_bytes_ = &metrics->gauge("warehouse.stored_bytes");
}

CacheEntry* AppWarehouse::lookup_slot(std::string_view reference) {
  const std::uint32_t* slot = index_.find(reference);
  return slot == nullptr ? nullptr : &slots_[*slot].entry;
}

void AppWarehouse::erase_entry(std::uint32_t slot) {
  Slot& s = slots_[slot];
  assert(s.live);
  index_.erase(s.entry.reference);
  s.entry = CacheEntry{};
  s.live = false;
  free_.push_back(slot);
}

bool AppWarehouse::lookup(std::string_view reference) {
  const std::uint32_t* slot = index_.find(reference);
  if (slot != nullptr && faults_ != nullptr &&
      faults_->should_fire(sim::FaultKind::kCacheEvict)) {
    // Eviction racing the lookup: the entry vanishes before the answer
    // lands, so this request must re-upload its code.
    stored_ -= slots_[*slot].entry.code_bytes;
    ++evictions_;
    ++injected_evictions_;
    if (metric_evictions_ != nullptr) {
      metric_evictions_->inc();
      metric_stored_bytes_->set(static_cast<double>(stored_));
    }
    erase_entry(*slot);
    slot = nullptr;
  }
  if (slot == nullptr) {
    ++miss_total_;
    if (metric_misses_ != nullptr) metric_misses_->inc();
    return false;
  }
  CacheEntry& entry = slots_[*slot].entry;
  ++hit_total_;
  if (metric_hits_ != nullptr) metric_hits_->inc();
  ++entry.hits;
  entry.last_use_seq = ++seq_;
  return true;
}

Aid AppWarehouse::store(std::string_view reference,
                        std::uint64_t code_bytes) {
  if (CacheEntry* entry = lookup_slot(reference)) {
    stored_ -= entry->code_bytes;
    entry->code_bytes = code_bytes;
    stored_ += code_bytes;
    entry->last_use_seq = ++seq_;
    return entry->aid;
  }
  while (capacity_ != 0 && index_.size() != 0 &&
         stored_ + code_bytes > capacity_) {
    evict_lru();
  }
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.entry.aid = next_aid_++;
  s.entry.reference = std::string(reference);
  s.entry.code_bytes = code_bytes;
  s.entry.last_use_seq = ++seq_;
  s.live = true;
  stored_ += code_bytes;
  index_.insert_or_assign(s.entry.reference, slot);
  if (metric_stored_bytes_ != nullptr) {
    metric_stored_bytes_->set(static_cast<double>(stored_));
  }
  return s.entry.aid;
}

void AppWarehouse::record_execution(std::string_view reference, EnvId env) {
  CacheEntry* entry = lookup_slot(reference);
  if (entry == nullptr) return;
  entry->containers.insert(env);
  entry->last_use_seq = ++seq_;
}

std::optional<EnvId> AppWarehouse::preferred_env(
    std::string_view reference) const {
  const std::uint32_t* slot = index_.find(reference);
  if (slot == nullptr) return std::nullopt;
  const CacheEntry& entry = slots_[*slot].entry;
  if (entry.containers.empty()) return std::nullopt;
  // Deterministic choice: the lowest CID that has run this app.
  return *entry.containers.begin();
}

void AppWarehouse::forget_env(EnvId env) {
  for (Slot& slot : slots_) {
    if (slot.live) slot.entry.containers.erase(env);
  }
}

const CacheEntry* AppWarehouse::find(std::string_view reference) const {
  const std::uint32_t* slot = index_.find(reference);
  return slot == nullptr ? nullptr : &slots_[*slot].entry;
}

void AppWarehouse::evict_lru() {
  // The LRU clock is unique per entry, so the victim — and therefore the
  // eviction order — is deterministic regardless of slot layout.
  std::uint32_t victim = UINT32_MAX;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) continue;
    if (victim == UINT32_MAX ||
        slots_[i].entry.last_use_seq < slots_[victim].entry.last_use_seq) {
      victim = i;
    }
  }
  assert(victim != UINT32_MAX);
  stored_ -= slots_[victim].entry.code_bytes;
  ++evictions_;
  if (metric_evictions_ != nullptr) {
    metric_evictions_->inc();
    metric_stored_bytes_->set(static_cast<double>(stored_));
  }
  erase_entry(victim);
}

}  // namespace rattrap::core
