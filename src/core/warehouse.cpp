#include "core/warehouse.hpp"

namespace rattrap::core {

bool AppWarehouse::hit(std::string_view reference) const {
  return table_.contains(reference);
}

void AppWarehouse::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_hits_ = metric_misses_ = metric_evictions_ = nullptr;
    metric_stored_bytes_ = nullptr;
    return;
  }
  metric_hits_ = &metrics->counter("warehouse.hits");
  metric_misses_ = &metrics->counter("warehouse.misses");
  metric_evictions_ = &metrics->counter("warehouse.evictions");
  metric_stored_bytes_ = &metrics->gauge("warehouse.stored_bytes");
}

bool AppWarehouse::lookup(std::string_view reference) {
  auto it = table_.find(reference);
  if (it != table_.end() && faults_ != nullptr &&
      faults_->should_fire(sim::FaultKind::kCacheEvict)) {
    // Eviction racing the lookup: the entry vanishes before the answer
    // lands, so this request must re-upload its code.
    stored_ -= it->second.code_bytes;
    ++evictions_;
    ++injected_evictions_;
    if (metric_evictions_ != nullptr) {
      metric_evictions_->inc();
      metric_stored_bytes_->set(static_cast<double>(stored_));
    }
    table_.erase(it);
    it = table_.end();
  }
  if (it == table_.end()) {
    ++miss_total_;
    if (metric_misses_ != nullptr) metric_misses_->inc();
    return false;
  }
  ++hit_total_;
  if (metric_hits_ != nullptr) metric_hits_->inc();
  ++it->second.hits;
  it->second.last_use_seq = ++seq_;
  return true;
}

Aid AppWarehouse::store(std::string_view reference,
                        std::uint64_t code_bytes) {
  auto it = table_.find(reference);
  if (it != table_.end()) {
    stored_ -= it->second.code_bytes;
    it->second.code_bytes = code_bytes;
    stored_ += code_bytes;
    it->second.last_use_seq = ++seq_;
    return it->second.aid;
  }
  while (capacity_ != 0 && !table_.empty() &&
         stored_ + code_bytes > capacity_) {
    evict_lru();
  }
  CacheEntry entry;
  entry.aid = next_aid_++;
  entry.reference = std::string(reference);
  entry.code_bytes = code_bytes;
  entry.last_use_seq = ++seq_;
  stored_ += code_bytes;
  const Aid aid = entry.aid;
  table_.emplace(std::string(reference), std::move(entry));
  if (metric_stored_bytes_ != nullptr) {
    metric_stored_bytes_->set(static_cast<double>(stored_));
  }
  return aid;
}

void AppWarehouse::record_execution(std::string_view reference, EnvId env) {
  const auto it = table_.find(reference);
  if (it == table_.end()) return;
  it->second.containers.insert(env);
  it->second.last_use_seq = ++seq_;
}

std::optional<EnvId> AppWarehouse::preferred_env(
    std::string_view reference) const {
  const auto it = table_.find(reference);
  if (it == table_.end() || it->second.containers.empty()) {
    return std::nullopt;
  }
  // Deterministic choice: the lowest CID that has run this app.
  return *it->second.containers.begin();
}

void AppWarehouse::forget_env(EnvId env) {
  for (auto& [reference, entry] : table_) {
    (void)reference;
    entry.containers.erase(env);
  }
}

const CacheEntry* AppWarehouse::find(std::string_view reference) const {
  const auto it = table_.find(reference);
  return it == table_.end() ? nullptr : &it->second;
}

void AppWarehouse::evict_lru() {
  auto victim = table_.begin();
  for (auto it = table_.begin(); it != table_.end(); ++it) {
    if (it->second.last_use_seq < victim->second.last_use_seq) victim = it;
  }
  stored_ -= victim->second.code_bytes;
  ++evictions_;
  if (metric_evictions_ != nullptr) {
    metric_evictions_->inc();
    metric_stored_bytes_->set(static_cast<double>(stored_));
  }
  table_.erase(victim);
}

}  // namespace rattrap::core
