// CAC lifecycle state machine (docs/ELASTIC.md).
//
// Every container on a shard lives in exactly one of six states:
//
//   cold ──admit──▶ booting ──▶ warm-idle ◀──▶ leased
//                      │            │             │
//                      └────────▶ draining ◀─────┘
//                                   │
//                                   ▼
//                               reclaimed
//
// The engine (core/platform.cpp) drives the transitions; this class is
// pure bookkeeping — it validates transition legality, keeps per-state
// population counts, accumulates the warm-idle memory-occupancy integral
// (the byte·seconds the §III-B ablation prices), and invokes an optional
// hook so the observability layer can emit per-transition spans and
// state gauges.  Illegal transitions are not fatal here: they are
// recorded as first_error() and surfaced by the lifecycle-state
// conservation invariant, so a violation fails loudly in the harness
// instead of crashing a release build.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/time.hpp"

namespace rattrap::core::elastic {

enum class CacState : std::uint8_t {
  kCold = 0,      ///< known id, not yet admitted (transient)
  kBooting = 1,   ///< provisioning in progress
  kWarmIdle = 2,  ///< ready, unleased, holding memory
  kLeased = 3,    ///< ready with at least one session bound
  kDraining = 4,  ///< no new leases; waiting for in-flight work
  kReclaimed = 5, ///< retired, memory and private layer released
};

inline constexpr std::size_t kStateCount = 6;

[[nodiscard]] const char* to_string(CacState state);

class CacLifecycle {
 public:
  /// Invoked on every successful transition (including admit's
  /// cold→booting) with the container id, the endpoints and the event
  /// time.  The hook may read counts/states (they are already updated
  /// when it fires) but must not re-enter admit() or transition().
  using TransitionHook = std::function<void(
      std::uint32_t cid, CacState from, CacState to, sim::SimTime now)>;

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Starts tracking `cid` and moves it cold→booting.  `memory_bytes` is
  /// the committed allocation used for the idle-occupancy integral.
  void admit(std::uint32_t cid, sim::SimTime now, std::uint64_t memory_bytes);

  /// Moves `cid` to `to` if the edge is legal; otherwise records the
  /// violation in first_error() and leaves the state unchanged.
  void transition(std::uint32_t cid, CacState to, sim::SimTime now);

  [[nodiscard]] bool tracked(std::uint32_t cid) const {
    return entries_.contains(cid);
  }
  [[nodiscard]] CacState state(std::uint32_t cid) const;

  /// Containers currently in `state`.
  [[nodiscard]] std::size_t count(CacState state) const {
    return counts_[static_cast<std::size_t>(state)];
  }
  [[nodiscard]] std::size_t tracked_count() const { return entries_.size(); }

  /// Total transitions *into* `state` so far (admit counts into booting).
  [[nodiscard]] std::uint64_t transitions_into(CacState state) const {
    return transition_counts_[static_cast<std::size_t>(state)];
  }

  /// Integral of committed memory over time spent warm-idle, in
  /// byte·seconds up to `now` — the standing cost of the warm pool.
  [[nodiscard]] double idle_byte_seconds(sim::SimTime now) const;

  /// First illegal transition observed, or empty.  The lifecycle-state
  /// conservation invariant reports this.
  [[nodiscard]] const std::string& first_error() const { return first_error_; }

 private:
  struct Entry {
    CacState state = CacState::kCold;
    std::uint64_t memory_bytes = 0;
    sim::SimTime entered_at = 0;
  };

  std::map<std::uint32_t, Entry> entries_;
  std::array<std::size_t, kStateCount> counts_{};
  std::array<std::uint64_t, kStateCount> transition_counts_{};
  /// Completed warm-idle occupancy (closed intervals only); the live
  /// interval of currently warm containers is added by the accessor.
  double idle_byte_seconds_ = 0;
  TransitionHook hook_;
  std::string first_error_;
};

}  // namespace rattrap::core::elastic
