#include "core/elastic/lifecycle.hpp"

namespace rattrap::core::elastic {

const char* to_string(CacState state) {
  switch (state) {
    case CacState::kCold:
      return "cold";
    case CacState::kBooting:
      return "booting";
    case CacState::kWarmIdle:
      return "warm_idle";
    case CacState::kLeased:
      return "leased";
    case CacState::kDraining:
      return "draining";
    case CacState::kReclaimed:
      return "reclaimed";
  }
  return "?";
}

namespace {
/// The legal edges of the state machine.  Booting may reclaim directly
/// (provision failure, crash mid-boot) and may lease directly (a session
/// was already waiting when the boot finished).
bool legal(CacState from, CacState to) {
  switch (from) {
    case CacState::kCold:
      return to == CacState::kBooting;
    case CacState::kBooting:
      return to == CacState::kWarmIdle || to == CacState::kLeased ||
             to == CacState::kDraining || to == CacState::kReclaimed;
    case CacState::kWarmIdle:
      return to == CacState::kLeased || to == CacState::kDraining ||
             to == CacState::kReclaimed;
    case CacState::kLeased:
      return to == CacState::kWarmIdle || to == CacState::kDraining ||
             to == CacState::kReclaimed;
    case CacState::kDraining:
      return to == CacState::kReclaimed;
    case CacState::kReclaimed:
      return false;
  }
  return false;
}
}  // namespace

void CacLifecycle::admit(std::uint32_t cid, sim::SimTime now,
                         std::uint64_t memory_bytes) {
  if (entries_.contains(cid)) {
    if (first_error_.empty()) {
      first_error_ =
          "cid " + std::to_string(cid) + " admitted twice";
    }
    return;
  }
  Entry entry;
  entry.state = CacState::kBooting;
  entry.memory_bytes = memory_bytes;
  entry.entered_at = now;
  entries_.emplace(cid, entry);
  ++counts_[static_cast<std::size_t>(CacState::kBooting)];
  ++transition_counts_[static_cast<std::size_t>(CacState::kBooting)];
  if (hook_) hook_(cid, CacState::kCold, CacState::kBooting, now);
}

void CacLifecycle::transition(std::uint32_t cid, CacState to,
                              sim::SimTime now) {
  const auto it = entries_.find(cid);
  if (it == entries_.end()) {
    if (first_error_.empty()) {
      first_error_ = "transition on untracked cid " + std::to_string(cid) +
                     " to " + to_string(to);
    }
    return;
  }
  Entry& entry = it->second;
  const CacState from = entry.state;
  if (!legal(from, to)) {
    if (first_error_.empty()) {
      first_error_ = "illegal transition on cid " + std::to_string(cid) +
                     ": " + to_string(from) + " -> " + to_string(to);
    }
    return;
  }
  if (from == CacState::kWarmIdle) {
    idle_byte_seconds_ += static_cast<double>(entry.memory_bytes) *
                          sim::to_seconds(now - entry.entered_at);
  }
  --counts_[static_cast<std::size_t>(from)];
  ++counts_[static_cast<std::size_t>(to)];
  ++transition_counts_[static_cast<std::size_t>(to)];
  entry.state = to;
  entry.entered_at = now;
  if (hook_) hook_(cid, from, to, now);
}

CacState CacLifecycle::state(std::uint32_t cid) const {
  const auto it = entries_.find(cid);
  return it == entries_.end() ? CacState::kCold : it->second.state;
}

double CacLifecycle::idle_byte_seconds(sim::SimTime now) const {
  double sum = idle_byte_seconds_;
  for (const auto& [cid, entry] : entries_) {
    (void)cid;
    if (entry.state != CacState::kWarmIdle) continue;
    sum += static_cast<double>(entry.memory_bytes) *
           sim::to_seconds(now - entry.entered_at);
  }
  return sum;
}

}  // namespace rattrap::core::elastic
