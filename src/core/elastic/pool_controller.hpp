// Warm-pool controller: sizes the shard's warm-idle capacity
// (docs/ELASTIC.md).
//
// Each elastic tick the engine hands the controller a snapshot of the
// lifecycle populations; the controller answers with how many containers
// to prewarm or drain toward its target.  Two policies share the code
// path:
//
//   kStatic      target = static_target, always.  This is the §III-B
//                warm pool — but *replenishing*: a claimed container is
//                replaced on the next tick, which is what a fixed-size
//                pool means at cluster scale.  It doubles as the
//                forecast=off ablation arm.
//   kPredictive  target = ⌈forecast(boot) · boot · safety⌉ — enough
//                warm capacity to absorb the arrivals expected during
//                one boot time, per Little's law, with a safety margin.
//                The boot time is a learned EWMA unless pinned by
//                prewarm_horizon_s.
//
// Both targets are clamped to [min_warm, max_warm] and to the memory
// budget (budget / bytes-per-container); the budget clamp is what the
// warm-pool memory-budget invariant verifies end to end.  Scale-down is
// hysteretic: the pool must sit above target + hysteresis for
// drain_hold_ticks consecutive ticks before anything drains, so a
// one-tick lull never churns capacity.
#pragma once

#include <cstdint>

#include "core/elastic/forecaster.hpp"
#include "core/qos/qos.hpp"

namespace rattrap::core::elastic {

enum class PoolMode : std::uint8_t {
  kDisabled = 0,   ///< legacy: static warm_pool knob, no controller
  kStatic = 1,     ///< fixed replenishing target (forecast off)
  kPredictive = 2, ///< Holt forecast drives the target
};

[[nodiscard]] const char* to_string(PoolMode mode);

/// Elastic capacity knobs, carried on PlatformConfig (docs/ELASTIC.md).
struct ElasticConfig {
  PoolMode mode = PoolMode::kDisabled;

  /// Warm-idle target for kStatic (and the prewarm floor at reset).
  std::uint32_t static_target = 0;

  /// Target clamp; min_warm also seeds the predictive pool at reset.
  std::uint32_t min_warm = 0;
  std::uint32_t max_warm = 64;

  /// Committed-memory ceiling for the warm-idle pool, in bytes; the
  /// target never exceeds budget / bytes-per-container.  0 = unlimited.
  std::uint64_t memory_budget_bytes = 0;

  /// Controller cadence on the event queue.
  double tick_s = 0.5;

  /// Holt smoothing coefficients (level / trend).
  double alpha = 0.4;
  double beta = 0.2;

  /// Demand multiplier on the predictive target.
  double safety = 1.3;

  /// Prewarm look-ahead in seconds; 0 uses the learned boot-time EWMA.
  double prewarm_horizon_s = 0;

  /// Consecutive over-target ticks before draining starts, and the
  /// surplus tolerated without counting as over-target.
  std::uint32_t drain_hold_ticks = 3;
  std::uint32_t hysteresis = 1;
};

/// Lifecycle populations the controller decides on (one shard).
struct PoolSnapshot {
  std::size_t warm = 0;      ///< warm-idle, unleased pool containers
  std::size_t booting = 0;   ///< prewarm boots already in flight
  std::uint64_t memory_per_env = 0;  ///< committed bytes per container
};

struct PoolDecision {
  std::uint32_t prewarm = 0;  ///< containers to start booting now
  std::uint32_t drain = 0;    ///< warm containers to start draining now
  std::uint32_t target = 0;   ///< the clamped warm-idle target
};

class PoolController {
 public:
  explicit PoolController(const ElasticConfig& config)
      : config_(config), forecaster_(config.alpha, config.beta) {}

  /// Feeds one arrival into the forecaster (called from the engine's
  /// arrival path; the class split lets later policies weight lanes).
  void observe_arrival(qos::PriorityClass klass) {
    forecaster_.observe(klass);
  }

  /// Feeds one measured boot duration into the prewarm-horizon EWMA.
  void observe_boot(double seconds);

  /// The warm target to provision before any traffic has been seen
  /// (reset time): static_target for kStatic, min_warm for kPredictive.
  [[nodiscard]] std::uint32_t initial_target(
      std::uint64_t memory_per_env) const;

  /// One controller step: folds the tick window into the forecaster and
  /// returns the prewarm/drain decision for this snapshot.
  PoolDecision tick(const PoolSnapshot& snapshot, double window_s);

  [[nodiscard]] double forecast_rate() const {
    return forecaster_.total_forecast(0);
  }
  [[nodiscard]] double boot_estimate_s() const { return boot_ewma_s_; }
  [[nodiscard]] const ElasticConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::uint32_t clamp_target(
      double raw, std::uint64_t memory_per_env) const;

  ElasticConfig config_;
  Forecaster forecaster_;
  double boot_ewma_s_ = 1.0;  ///< prior until the first boot lands
  bool boot_seen_ = false;
  std::uint32_t over_ticks_ = 0;
};

}  // namespace rattrap::core::elastic
