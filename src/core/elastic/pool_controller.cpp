#include "core/elastic/pool_controller.hpp"

#include <algorithm>
#include <cmath>

namespace rattrap::core::elastic {

const char* to_string(PoolMode mode) {
  switch (mode) {
    case PoolMode::kDisabled:
      return "disabled";
    case PoolMode::kStatic:
      return "static";
    case PoolMode::kPredictive:
      return "predictive";
  }
  return "?";
}

void PoolController::observe_boot(double seconds) {
  if (seconds <= 0) return;
  boot_ewma_s_ =
      boot_seen_ ? 0.7 * boot_ewma_s_ + 0.3 * seconds : seconds;
  boot_seen_ = true;
}

std::uint32_t PoolController::clamp_target(
    double raw, std::uint64_t memory_per_env) const {
  double target = std::max(raw, static_cast<double>(config_.min_warm));
  target = std::min(target, static_cast<double>(config_.max_warm));
  if (config_.memory_budget_bytes > 0 && memory_per_env > 0) {
    const double budget_cap = std::floor(
        static_cast<double>(config_.memory_budget_bytes) /
        static_cast<double>(memory_per_env));
    target = std::min(target, budget_cap);
  }
  return static_cast<std::uint32_t>(std::max(0.0, target));
}

std::uint32_t PoolController::initial_target(
    std::uint64_t memory_per_env) const {
  const double raw = config_.mode == PoolMode::kStatic
                         ? static_cast<double>(config_.static_target)
                         : static_cast<double>(config_.min_warm);
  return clamp_target(raw, memory_per_env);
}

PoolDecision PoolController::tick(const PoolSnapshot& snapshot,
                                  double window_s) {
  forecaster_.tick(window_s);

  double raw;
  if (config_.mode == PoolMode::kStatic) {
    raw = static_cast<double>(config_.static_target);
  } else {
    const double horizon = config_.prewarm_horizon_s > 0
                               ? config_.prewarm_horizon_s
                               : boot_ewma_s_;
    // Little's law: arrivals expected during one boot time is the warm
    // capacity that keeps a cold start off the critical path.
    raw = std::ceil(forecaster_.total_forecast(horizon) * horizon *
                    config_.safety);
  }

  PoolDecision decision;
  decision.target = clamp_target(raw, snapshot.memory_per_env);
  const std::size_t pipeline = snapshot.warm + snapshot.booting;
  if (pipeline < decision.target) {
    decision.prewarm =
        static_cast<std::uint32_t>(decision.target - pipeline);
    over_ticks_ = 0;
  } else if (snapshot.warm >
             static_cast<std::size_t>(decision.target) +
                 config_.hysteresis) {
    if (++over_ticks_ >= std::max(1u, config_.drain_hold_ticks)) {
      decision.drain = static_cast<std::uint32_t>(
          snapshot.warm - decision.target);
      over_ticks_ = 0;
    }
  } else {
    over_ticks_ = 0;
  }
  return decision;
}

}  // namespace rattrap::core::elastic
