// Per-class arrival-rate forecaster (docs/ELASTIC.md).
//
// Holt's linear exponential smoothing over per-tick arrival counts, one
// track per QoS priority class.  The engine calls observe() for every
// arrival and tick() on fixed event-queue intervals — no wall clock is
// ever consulted, so a forecast is a pure function of the arrival
// schedule and stays deterministic under the seeded simulator.
//
//   level ← α·x + (1−α)·(level + trend)
//   trend ← β·(level − level_prev) + (1−β)·trend
//   forecast(h) = max(0, level + trend·h)
//
// where x is the arrival rate measured over the tick window (count /
// window seconds) and h is the look-ahead horizon in seconds.  The trend
// term is what buys prewarm lead time on a ramp: by the time demand
// arrives, the containers it needs are already booting.
#pragma once

#include <array>
#include <cstdint>

#include "core/qos/qos.hpp"

namespace rattrap::core::elastic {

class Forecaster {
 public:
  Forecaster(double alpha, double beta) : alpha_(alpha), beta_(beta) {}

  /// Counts one arrival of `klass` toward the current tick window.
  void observe(qos::PriorityClass klass) {
    ++tracks_[qos::class_index(klass)].pending;
  }

  /// Folds the window's counts into the per-class estimators.
  void tick(double window_s);

  /// Smoothed arrival rate of `klass` (requests/s).
  [[nodiscard]] double rate(qos::PriorityClass klass) const {
    return tracks_[qos::class_index(klass)].level;
  }

  /// Rate of `klass` projected `horizon_s` ahead, floored at zero.
  [[nodiscard]] double forecast(qos::PriorityClass klass,
                                double horizon_s) const;

  /// Sum of per-class forecasts — the total demand the pool must absorb.
  [[nodiscard]] double total_forecast(double horizon_s) const;

  /// True once at least one tick folded real data.
  [[nodiscard]] bool primed() const { return primed_; }

 private:
  struct Track {
    double level = 0;
    double trend = 0;
    std::uint64_t pending = 0;
    bool seeded = false;  ///< first window seeds level directly
  };

  std::array<Track, qos::kClassCount> tracks_;
  double alpha_;
  double beta_;
  bool primed_ = false;
};

}  // namespace rattrap::core::elastic
