#include "core/elastic/forecaster.hpp"

#include <algorithm>

namespace rattrap::core::elastic {

void Forecaster::tick(double window_s) {
  if (window_s <= 0) return;
  for (Track& track : tracks_) {
    const double x =
        static_cast<double>(track.pending) / window_s;
    track.pending = 0;
    if (!track.seeded) {
      // First window: seed the level with the observed rate so the
      // estimator does not spend its early ticks climbing from zero.
      track.level = x;
      track.trend = 0;
      track.seeded = true;
      continue;
    }
    const double prev_level = track.level;
    track.level = alpha_ * x + (1.0 - alpha_) * (track.level + track.trend);
    track.trend =
        beta_ * (track.level - prev_level) + (1.0 - beta_) * track.trend;
  }
  primed_ = true;
}

double Forecaster::forecast(qos::PriorityClass klass,
                            double horizon_s) const {
  const Track& track = tracks_[qos::class_index(klass)];
  return std::max(0.0, track.level + track.trend * horizon_s);
}

double Forecaster::total_forecast(double horizon_s) const {
  double sum = 0;
  for (const qos::PriorityClass klass : qos::kAllClasses) {
    sum += forecast(klass, horizon_s);
  }
  return sum;
}

}  // namespace rattrap::core::elastic
