// Cloud Android Container: the paper's runtime environment (§IV-B).
//
// A CAC is an LXC-style container whose rootfs unions the (customized or
// stock) Android image, pinned to the Android Container Driver modules,
// booting through the modified-init sequence.  This class composes the
// container runtime, kernel driver package and Android boot model into a
// single environment object; asynchronous provisioning is orchestrated by
// the offload engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "android/boot.hpp"
#include "android/classloader.hpp"
#include "android/properties.hpp"
#include "container/runtime.hpp"
#include "kernel/android_container_driver.hpp"

namespace rattrap::core {

struct CacConfig {
  std::string name;
  android::OsProfile profile = android::OsProfile::kCustomized;
  /// Lower layer(s) for the rootfs: the Shared Resource Layer system
  /// image, or a private full copy for the non-optimized variant.
  std::vector<std::shared_ptr<const fs::Layer>> lower_layers;
  std::uint64_t memory_limit = 96ull * 1024 * 1024;
  std::uint32_t cpu_shares = 1024;
  /// Marks that the shared system layer is already page-cached by an
  /// earlier CAC boot (removes most boot-time disk reads).
  bool warm_shared_layer = false;
  /// Private writable-layer bytes materialized at first boot (app data
  /// directories, logs — the ~7.1 MB Table I reports per optimized CAC).
  std::uint64_t private_seed_bytes = 7340032;  // 7.0 MiB
};

class CloudAndroidContainer {
 public:
  CloudAndroidContainer(CacConfig config,
                        container::ContainerRuntime& runtime,
                        kernel::AndroidContainerDriver& driver);
  ~CloudAndroidContainer();

  CloudAndroidContainer(const CloudAndroidContainer&) = delete;
  CloudAndroidContainer& operator=(const CloudAndroidContainer&) = delete;

  [[nodiscard]] container::ContainerId cid() const { return cid_; }
  [[nodiscard]] const CacConfig& config() const { return config_; }
  [[nodiscard]] bool booted() const { return booted_; }

  /// Synchronous provisioning pieces.  The engine drives the async boot:
  ///   1. start_container(): namespaces + cgroup + ACD load/pin; returns
  ///      the container-runtime cost, or nullopt on failure (missing
  ///      kernel feature / memory limit).
  ///   2. userspace_boot(): the Android boot breakdown (cpu components +
  ///      disk bytes) the engine turns into simulator/disk events.
  ///   3. finish_boot(now): marks booted, spawns the Android process
  ///      tree, charges memory and seeds the private layer.
  std::optional<sim::SimDuration> start_container(
      kernel::HostKernel& kernel);
  [[nodiscard]] android::UserspaceBoot userspace_boot() const;
  void finish_boot(sim::SimTime now);

  /// Stops the container and releases driver pins and memory.
  void shutdown(kernel::HostKernel& kernel);

  /// Crash-kills the container (fault injection): abrupt death with the
  /// same kernel-side reaping as shutdown, flagged so the platform's
  /// Monitor can distinguish a crashed CAC from a reclaimed one.
  void crash(kernel::HostKernel& kernel);

  [[nodiscard]] bool crashed() const { return crashed_; }

  /// The container's private (copy-on-write top layer) disk bytes.
  [[nodiscard]] std::uint64_t private_disk_bytes() const;

  /// Discards the private COW layer (drain-based reclaim): the shared
  /// lower layers are untouched, the per-CAC delta is gone.  Returns the
  /// bytes freed.
  std::uint64_t reclaim_private_layer();

  /// Resident memory once booted.
  [[nodiscard]] std::uint64_t boot_memory() const;

  [[nodiscard]] android::ClassLoader& classloader() { return loader_; }
  [[nodiscard]] android::PropertyStore& properties() { return properties_; }
  [[nodiscard]] container::Container* container() { return container_; }

 private:
  CacConfig config_;
  container::ContainerRuntime& runtime_;
  kernel::AndroidContainerDriver& driver_;
  container::Container* container_ = nullptr;
  container::ContainerId cid_ = 0;
  android::ClassLoader loader_;
  android::PropertyStore properties_;
  bool booted_ = false;
  bool pinned_ = false;
  bool crashed_ = false;
  std::uint64_t charged_memory_ = 0;
};

}  // namespace rattrap::core
