#include "core/invariant.hpp"

#include <utility>

namespace rattrap::core {

void InvariantChecker::add_invariant(std::string name, Check check) {
  invariants_.push_back({std::move(name), std::move(check)});
}

bool InvariantChecker::run(sim::SimTime now) {
  ++checks_run_;
  bool all_held = true;
  for (const auto& invariant : invariants_) {
    auto detail = invariant.check();
    if (!detail.has_value()) continue;
    all_held = false;
    ++total_violations_;
    if (violations_.size() < max_recorded_) {
      violations_.push_back(
          {invariant.name, std::move(*detail), now, checks_run_ - 1});
    }
  }
  return all_held;
}

std::string InvariantChecker::report() const {
  std::string out;
  for (const auto& v : violations_) {
    out += std::to_string(v.when) + "us " + v.name + ": " + v.detail + "\n";
  }
  return out;
}

}  // namespace rattrap::core
