#include "core/calibration.hpp"

namespace rattrap::core {
namespace {

Calibration build() {
  Calibration c;
  // One Xeon core running the Android runtime natively. Rates pair with
  // device::phone_rates() to give local-vs-remote compute ratios of
  // ~5–10×, which combined with network and preparation overheads yields
  // the offloading speedups of Fig. 1 / Fig. 11.
  c.server_rates[static_cast<std::size_t>(workloads::Kind::kOcr)] = 2.2e6;
  c.server_rates[static_cast<std::size_t>(workloads::Kind::kChess)] = 0.375e6;
  c.server_rates[static_cast<std::size_t>(workloads::Kind::kVirusScan)] =
      1.4e6;
  c.server_rates[static_cast<std::size_t>(workloads::Kind::kLinpack)] =
      300e6;
  return c;
}

}  // namespace

const Calibration& default_calibration() {
  static const Calibration calibration = build();
  return calibration;
}

}  // namespace rattrap::core
