// Platform facade: the three cloud platforms the paper evaluates.
//
//   VmCloud           — Android-x86 in VirtualBox, 1 vCPU / 512 MB per VM.
//   RattrapWithoutOpt — containers replace VMs, but no OS customization,
//                       no Shared Resource Layer, no code cache (§VI-A).
//   Rattrap           — the full system.
//
// A Platform instance owns a CloudServer and an event-driven offload
// engine; feeding it a replayable request stream produces per-request
// phase breakdowns, traffic accounts, energy figures and the server-load
// timelines — everything the evaluation section charts.
//
// Clients talk to the engine through Session handles (open_session →
// submit → result/close): a session carries the QoS identity — tenant,
// priority class, DRR weight, deadline — that the admission front door
// schedules on (docs/QOS.md).  The legacy begin_run / submit /
// finish_run trio survives as thin wrappers over one default session.
#pragma once

#include <cstdint>
#include <optional>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "android/app.hpp"
#include "android/classloader.hpp"
#include "container/registry.hpp"
#include "core/admission.hpp"
#include "core/cac.hpp"
#include "core/dispatcher.hpp"
#include "core/elastic/lifecycle.hpp"
#include "core/elastic/pool_controller.hpp"
#include "core/invariant.hpp"
#include "core/offload.hpp"
#include "core/qos/qos.hpp"
#include "core/server.hpp"
#include "device/client.hpp"
#include "device/device.hpp"
#include "net/connection.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/arena.hpp"
#include "sim/fault.hpp"

namespace rattrap::core {

enum class PlatformKind : std::uint8_t {
  kVmCloud,
  kRattrapWithoutOpt,
  kRattrap,
};

[[nodiscard]] const char* to_string(PlatformKind kind);

/// One scheduled device handoff: at virtual time `at` the fleet's radio
/// becomes `to` (the paper's per-radio cost models follow — §VI-A link
/// parameters and the PowerTutor radio profiles).  `outage` > 0 models a
/// hard handover: connectivity is gone for that long and sessions mid
/// radio operation stall until the new radio attaches.
struct HandoffEvent {
  sim::SimTime at = 0;
  net::LinkConfig to;
  sim::SimDuration outage = 0;
};

struct PlatformConfig {
  PlatformKind kind = PlatformKind::kRattrap;
  net::LinkConfig link = net::lan_wifi();
  std::uint64_t seed = 1;

  // Feature flags (derived from `kind` by make_config; individually
  // overridable for the ablation benches).
  bool container_backing = true;    ///< containers vs VMs
  bool customized_os = true;        ///< stripped image + stub services
  bool shared_resource_layer = true;///< shared RO system layer
  bool sharing_offload_io = true;   ///< shared tmpfs for offload files
  bool code_cache = true;           ///< App Warehouse
  bool dispatcher_affinity = true;  ///< AID → CID routing

  /// Idle environments are reclaimed (stopped, memory freed) after this
  /// long without work — the cloud cannot keep per-user runtimes resident
  /// forever (§III-B: pre-loading "would inevitably reduce the server
  /// resource utilization"). 0 disables reclamation.
  sim::SimDuration env_idle_timeout = 300 * sim::kSecond;

  /// Full calibration override (server cores, rates, disk, overheads) —
  /// how researchers model different hardware (e.g. an edge cloudlet vs
  /// a datacenter server). Unset keeps default_calibration().
  std::optional<Calibration> calibration;

  /// Overrides the shared offloading-I/O tmpfs capacity (bytes);
  /// 0 keeps the calibration default. Small values force the staging
  /// fallback path (offload files spill to disk when memory is full).
  std::uint64_t tmpfs_capacity_override = 0;

  /// Client-side adaptive offloading decision (the §II "offloading
  /// decision" half of the mechanism): after a few exploratory offloads
  /// per app, requests run locally whenever the device's EWMA of remote
  /// responses exceeds its EWMA of local execution times.
  bool adaptive_offloading = false;

  /// Environments pre-booted at t=0 and handed to the first devices that
  /// ask. Pre-loading hides the cold start but holds memory the whole
  /// time — the §III-B tradeoff the warm-pool ablation quantifies.
  /// Warm-pool environments are exempt from idle reclamation until first
  /// use.  Legacy knob: ignored when `elastic.mode` is not kDisabled —
  /// the PoolController owns the pool then (docs/ELASTIC.md).
  std::uint32_t warm_pool = 0;

  /// Elastic capacity manager: lifecycle-managed warm pool with a
  /// static-replenishing or forecast-driven target, hysteretic
  /// drain-based scale-down and a memory budget (docs/ELASTIC.md).
  elastic::ElasticConfig elastic;

  // -- Fault injection (docs/FAULTS.md) --------------------------------

  /// Fault schedule evaluated during run(); empty = no faults. Build it
  /// programmatically or with sim::FaultPlan::parse("net.drop:p=0.05;…").
  sim::FaultPlan fault_plan;

  /// Evaluate the cross-component invariants after every simulator event
  /// (active only while a fault plan is installed).
  bool check_invariants = true;

  /// Crash recovery: the Monitor's health sweep detects a dead
  /// environment and the Dispatcher re-dispatches its sessions to a
  /// fresh one. Disabling this strands those sessions on a dead CID —
  /// which the invariant harness must catch.
  bool crash_recovery = true;

  /// Re-dispatch budget per session (crashed environments); exceeded ⇒
  /// the request is rejected.
  std::uint32_t max_redispatch = 3;

  /// Connection-attempt budget under injected drops; each retry backs
  /// off exponentially from connect_backoff.
  std::uint32_t max_connect_attempts = 4;
  sim::SimDuration connect_backoff = 200 * sim::kMillisecond;

  /// How long a crashed environment stays undetected (the Monitor's
  /// health-sweep interval).
  sim::SimDuration crash_detection_latency = 100 * sim::kMillisecond;

  // -- Device mobility (docs/LOADGEN.md) -------------------------------

  /// Scheduled mid-run radio handoffs (WiFi↔3G/4G), applied to the one
  /// shared link in virtual-time order.  A handoff with an outage models
  /// the disconnect/reconnect gap of a hard handover: radio operations
  /// (handshakes, upload starts, result downloads) stall until the new
  /// radio attaches, then every interrupted session resumes where it
  /// left off — nothing is rejected, the accounting identity holds.
  /// Each run replays the same plan from its base link (the plan is
  /// per-run state, like the fault pump's one-shot rules).
  std::vector<HandoffEvent> mobility;

  // -- Admission control & QoS (docs/LOADGEN.md, docs/QOS.md) ----------

  /// Dispatcher front door: class-aware bounded accept queues, per-tenant
  /// token buckets, utilization-based shedding.  Disabled by default —
  /// the paper-reproduction benches run unprotected, like the prototype.
  AdmissionConfig admission;

  /// Request-based Access Controller policy (§IV-E, docs/RAC.md):
  /// violation threshold, block window and per-tenant in-flight quota.
  /// Defaults keep the seed behaviour (threshold 5, permanent blocks, no
  /// quota).
  AccessConfig access;

  /// The cluster shard this platform instance serves as (set by Cluster;
  /// annotated on session spans as "placement").  -1 = standalone.
  std::int32_t shard_index = -1;

  /// Run the invariant harness even without a fault plan (the load-gen
  /// property battery).  Expensive: the checks are O(live sessions ×
  /// environments) after every event, so keep this off at 10^4+ session
  /// scale.
  bool force_invariants = false;
};

/// Canonical configuration for one of the three evaluated platforms.
[[nodiscard]] PlatformConfig make_config(PlatformKind kind,
                                         net::LinkConfig link = net::lan_wifi(),
                                         std::uint64_t seed = 1);

/// Table I row: what provisioning one runtime environment costs.
struct ProvisionStats {
  sim::SimDuration setup_time = 0;   ///< boot → connected to Dispatcher
  std::uint64_t memory_configured = 0;  ///< allocation (512/128/96 MB)
  std::uint64_t memory_usage = 0;    ///< measured resident peak
  std::uint64_t disk_bytes = 0;      ///< per-environment disk footprint
  std::uint64_t shared_disk_bytes = 0;  ///< amortized shared layer (once)
};

/// QoS identity of one client session (docs/QOS.md).
struct SessionConfig {
  /// Admission tenant: the token-bucket and DRR-fairness key.  Empty =
  /// per-app tenancy (each app id is its own tenant), the legacy
  /// behaviour.
  std::string tenant;

  /// Priority class for every request submitted on this session.
  qos::PriorityClass priority = qos::PriorityClass::kStandard;

  /// DRR weight of `tenant` within its class: a weight-3 tenant drains
  /// 3× the queued requests of a weight-1 tenant under saturation.
  /// Requires a named tenant when != 1.  0 is invalid.
  std::uint32_t tenant_weight = 1;

  /// Response-time target; responses above it mark the outcome
  /// deadline_missed (accounting only — no scheduling effect).  0 = none.
  sim::SimDuration deadline = 0;

  /// Operations the offloaded code attempts against the RAC on every
  /// request in addition to its honest workflow — how adversary profiles
  /// model permission-probing apps (docs/RAC.md).  Forbidden entries
  /// accrue violations until the tenant is blocked.
  std::vector<Operation> probe_ops;
};

class Platform;

/// Move-only handle for one client's request stream on a Platform.
/// Obtained from Platform::open_session(); submit() schedules requests
/// under this session's QoS identity, result() reads finished outcomes,
/// close() drains the run and returns this session's outcomes.  The
/// handle does not own the run: closing one session leaves others open.
class Session {
 public:
  Session() = default;
  Session(Session&& other) noexcept;
  Session& operator=(Session&& other) noexcept;
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Schedules one request under this session's tenant/class/deadline.
  /// Sequences must stay dense and unique across *all* sessions of a run.
  void submit(const workloads::OffloadRequest& request);

  /// The finished outcome for `sequence`, or nullptr while in flight.
  [[nodiscard]] const RequestOutcome* result(std::uint64_t sequence) const;

  /// Drains the event queue and returns the outcomes of every request
  /// submitted through *this* session, in submission order.  The handle
  /// is closed afterwards; submit() on it is invalid.
  std::vector<RequestOutcome> close();

  [[nodiscard]] bool open() const { return platform_ != nullptr; }
  [[nodiscard]] const SessionConfig& config() const;

 private:
  friend class Platform;
  Session(Platform* platform, std::uint64_t id)
      : platform_(platform), id_(id) {}

  Platform* platform_ = nullptr;
  std::uint64_t id_ = 0;
};

class Platform {
 public:
  explicit Platform(PlatformConfig config);
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] const PlatformConfig& config() const { return config_; }
  [[nodiscard]] CloudServer& server() { return *server_; }

  /// Replays a request stream to completion; outcomes are indexed by
  /// request sequence.  Tasks are actually executed (real kernels) to
  /// obtain their work units.
  std::vector<RequestOutcome> run(
      const std::vector<workloads::OffloadRequest>& stream);

  // -- Session API (docs/QOS.md) ---------------------------------------
  //
  // run() is sugar over one Session.  A closed-loop driver opens one
  // session per traffic class, installs a completion observer, and
  // submits follow-up requests *from inside the observer* — the arrivals
  // land on the same event queue, so a dynamically generated workload is
  // exactly as deterministic as a replayed one.

  /// Opens a client session carrying the given QoS identity.  The first
  /// session opened after the previous run finished resets per-run state
  /// (outcomes, live sessions, accept queues) and provisions the warm
  /// pool / fault pump; further sessions join the active run.
  /// kInvalidConfig: tenant_weight of 0, or a non-default weight without
  /// a named tenant.
  Result<Session> open_session(SessionConfig config = {});

  /// The finished outcome for `sequence` (any session), or nullptr.
  [[nodiscard]] const RequestOutcome* result(std::uint64_t sequence) const;

  // -- Legacy incremental API ------------------------------------------
  //
  // Deprecated wrappers over one default (standard-class, per-app-tenant)
  // session; prefer open_session().  Kept so pre-QoS callers compile
  // unchanged.

  /// Deprecated: open_session() resets per-run state on demand.
  void begin_run();

  /// Deprecated: Session::submit() on the default session.
  void submit(const workloads::OffloadRequest& request);

  /// Deprecated: drains the event queue and returns every outcome of the
  /// run — *all* sessions', indexed by sequence — then ends the run.
  std::vector<RequestOutcome> finish_run();

  /// Observer invoked with each finished outcome (completed, rejected or
  /// executed locally) — the closed-loop feedback path. Empty uninstalls.
  void set_completion_observer(
      std::function<void(const RequestOutcome&)> observer) {
    completion_observer_ = std::move(observer);
  }

  /// Admission backpressure in [0, 1] (0 when admission is disabled).
  [[nodiscard]] double backpressure() const {
    return admission_ ? admission_->backpressure() : 0.0;
  }

  /// The admission controller, or nullptr when disabled.
  [[nodiscard]] AdmissionController* admission() { return admission_.get(); }
  [[nodiscard]] const AdmissionController* admission() const {
    return admission_.get();
  }

  /// Sessions waiting in the bounded accept queues right now.
  [[nodiscard]] std::size_t accept_queue_depth() const {
    return admission_ ? admission_->queue_depth() : 0;
  }

  /// Provisions one environment on an otherwise idle platform and reports
  /// the Table I statistics.  Usable once, on a fresh Platform.
  ProvisionStats measure_provision();

  /// Per-environment traffic accounts (Fig. 3's per-VM composition).
  [[nodiscard]] const std::map<std::uint32_t, net::TrafficAccount>&
  env_traffic() const {
    return env_traffic_;
  }

  /// Device-side radio profile implied by the configured link.
  [[nodiscard]] device::RadioProfile radio_profile() const;

  /// The environments provisioned so far.
  [[nodiscard]] std::size_t env_count() const { return envs_.size(); }

  /// Integral of committed environment memory over simulated time so far
  /// (byte·seconds) — the resource cost a warm pool pays (§III-B).
  [[nodiscard]] double memory_time_byte_seconds() const;

  /// The installed fault injector, or nullptr when the plan is empty.
  [[nodiscard]] sim::FaultInjector* fault_injector() {
    return faults_.get();
  }
  [[nodiscard]] const sim::FaultInjector* fault_injector() const {
    return faults_.get();
  }

  /// The cross-component invariant harness (populated when a fault plan
  /// is installed; checks run after every simulator event).
  [[nodiscard]] const InvariantChecker& invariants() const {
    return invariants_;
  }
  [[nodiscard]] InvariantChecker& invariants() { return invariants_; }

  /// Sessions currently in flight (bound or connecting).
  [[nodiscard]] std::size_t live_session_count() const {
    return live_sessions_.size();
  }

  /// Session-record allocations that overflowed the slab pool into the
  /// heap.  Stays 0 when the pool's block size covers allocate_shared's
  /// combined control-block + SessionState request (tests assert this).
  [[nodiscard]] std::uint64_t session_pool_heap_fallbacks() const;

  /// The platform-wide metrics registry (docs/OBSERVABILITY.md). Always
  /// live: every component is wired at construction and instrument
  /// updates are cheap enough for benchmark builds.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// Session tracing (disabled by default; call trace().enable() before
  /// run() to record spans and export Chrome trace-event JSON).
  [[nodiscard]] obs::TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const obs::TraceRecorder& trace() const { return trace_; }

  // -- Elastic capacity (docs/ELASTIC.md) ------------------------------

  /// Lifecycle ledger: the authoritative cold → booting → warm-idle →
  /// leased → draining → reclaimed state of every environment this
  /// platform ever provisioned.
  [[nodiscard]] const elastic::CacLifecycle& lifecycle() const {
    return lifecycle_;
  }

  /// Integral of warm-idle memory over simulated time (byte·seconds) —
  /// the idle-capacity cost the §III-B frontier charts.
  [[nodiscard]] double idle_byte_seconds() const {
    return lifecycle_.idle_byte_seconds(server_->simulator().now());
  }

  /// Warm-idle pool environments available for immediate lease.
  [[nodiscard]] std::uint32_t warm_idle_count() const;

  /// Boots up to `count` fresh pool environments (respects the elastic
  /// memory budget); returns how many were actually started.  Used by
  /// the controller tick and by cross-shard rebalancing.
  std::uint32_t elastic_prewarm(std::uint32_t count);

  /// Drains up to `count` warm-idle pool environments; returns how many
  /// drains began.  Draining capacity stops leasing and is reclaimed
  /// once in-flight work finishes.
  std::uint32_t elastic_retire_warm(std::uint32_t count);

  /// Starts draining one specific environment (tests / operations).
  /// False if the id is unknown, already draining, or retired.
  bool drain_env(std::uint32_t env_id);

  /// Content-addressed store of every lower layer the platform's CACs
  /// stack on.  Layers are pinned here by digest (deduplicated), so the
  /// shared base survives any individual environment's drain — only the
  /// private top layer is burned (docs/ELASTIC.md).
  [[nodiscard]] const container::LayerStore& layer_store() const {
    return layer_store_;
  }

 private:
  friend class Session;

  struct Env;
  struct SessionState;
  struct SessionScope;  ///< RAII: marks the session a handler acts for

  /// One open Session handle's server-side record.
  struct Stream {
    SessionConfig config;
    std::vector<std::uint64_t> sequences;  ///< submission order
    bool open = true;
  };

  Env& provision_env(const std::string& binding_key, sim::SimTime now);
  void provision_vm(Env& env);
  void provision_cac(Env& env);
  void env_ready(Env& env);
  void schedule_reclaim(Env& env);
  void retire_env(Env& env);

  // Elastic capacity machinery (docs/ELASTIC.md).
  void begin_drain(Env& env);
  void finish_drain(Env& env);
  Env& prewarm_env();
  void elastic_tick();
  void arm_elastic_tick();
  [[nodiscard]] std::uint64_t default_env_memory() const;

  // Session-handle plumbing.
  void reset_run();
  void drain_run();
  void submit_to_stream(std::uint64_t stream_id,
                        const workloads::OffloadRequest& request);
  std::vector<RequestOutcome> close_stream(std::uint64_t stream_id);
  [[nodiscard]] const SessionConfig& stream_config(
      std::uint64_t stream_id) const;
  void record_outcome(std::uint64_t sequence, RequestOutcome outcome);

  void on_arrival(std::shared_ptr<SessionState> s);
  void attempt_connect(std::shared_ptr<SessionState> s);
  void on_connected(std::shared_ptr<SessionState> s);
  void dispatch(std::shared_ptr<SessionState> s, sim::SimDuration lead_cost);
  void on_env_ready(std::shared_ptr<SessionState> s);
  void on_uploaded(std::shared_ptr<SessionState> s);
  void on_computed(std::shared_ptr<SessionState> s);
  void complete(std::shared_ptr<SessionState> s);

  // Mobility machinery (docs/LOADGEN.md).
  void arm_mobility_pump();
  void apply_handoff(const HandoffEvent& event);
  /// How long a radio operation starting now must wait for connectivity
  /// (0 when the link is attached).
  [[nodiscard]] sim::SimDuration mobility_stall(sim::SimTime now) const {
    return link_down_until_ > now ? link_down_until_ - now : 0;
  }
  /// Marks the session as interrupted-and-resumed (metrics + trace, once
  /// per session).
  void note_resumption(SessionState& s);

  // Fault-injection machinery.
  void crash_env(Env& env);
  void recover_env(std::uint32_t env_id);
  /// Block-onset sweep (docs/RAC.md): rejects every live session of a
  /// just-blocked tenant so it consumes zero container time past this
  /// instant (invariant #14).
  void on_tenant_blocked(const std::string& tenant, sim::SimTime now);
  void reject_session(std::shared_ptr<SessionState> s, RejectReason reason);
  void finish_session(SessionState& s);
  void unbind_session(SessionState& s);
  void register_invariants();

  // Admission control.
  void maybe_start_queued();

  // Observability: one phase span open per session at a time.
  void begin_phase(SessionState& s, const char* name);
  void end_phase(SessionState& s);
  void on_fault_fired(sim::FaultKind kind, sim::SimTime when);

  [[nodiscard]] double cpu_factor() const;
  [[nodiscard]] sim::SimDuration compute_io_time(Env& env,
                                                 std::uint64_t bytes,
                                                 std::uint32_t ops) const;

  PlatformConfig config_;
  // Declared before the engine so components holding cached instrument
  // handles are destroyed first.
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder trace_;
  SessionState* active_session_ = nullptr;  ///< set while a handler runs
  /// Slab pool backing session records: every SessionState is created
  /// via std::allocate_shared, so control block + payload land in one
  /// recycled slab block instead of a per-session heap allocation
  /// (docs/PERF.md).  Declared before server_ and the session containers
  /// so it is destroyed after every shared_ptr<SessionState> — including
  /// those captured in the simulator's pending event callbacks.
  std::unique_ptr<sim::SlabPool> session_pool_;
  std::unique_ptr<CloudServer> server_;
  std::unique_ptr<net::Link> link_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<sim::FaultInjector> faults_;
  std::unique_ptr<AdmissionController> admission_;
  /// Sessions parked in the admission class queues, by request sequence
  /// (the id the QosScheduler echoes back on pop).
  std::map<std::uint64_t, std::shared_ptr<SessionState>> queued_sessions_;
  std::function<void(const RequestOutcome&)> completion_observer_;
  InvariantChecker invariants_;
  std::vector<std::shared_ptr<SessionState>> live_sessions_;
  sim::Rng rng_;
  std::map<std::uint32_t, std::unique_ptr<Env>> envs_;
  std::map<std::uint32_t, net::TrafficAccount> env_traffic_;
  std::map<std::string, android::MobileApp> apps_;  ///< by app id
  std::vector<device::MobileDevice> devices_;
  std::vector<RequestOutcome> outcomes_;
  std::vector<std::uint8_t> outcome_done_;  ///< parallel to outcomes_
  elastic::CacLifecycle lifecycle_;
  std::unique_ptr<elastic::PoolController> pool_controller_;
  container::LayerStore layer_store_;
  std::uint32_t pool_seq_ = 0;       ///< names pool:<n> environments
  bool elastic_tick_armed_ = false;
  /// Open lifecycle-state span per environment (trace enabled only).
  std::map<std::uint32_t, obs::SpanId> lifecycle_spans_;
  std::map<std::uint64_t, Stream> streams_;  ///< by Session handle id
  std::uint64_t next_stream_id_ = 1;
  std::uint64_t default_stream_ = 0;  ///< legacy-wrapper session, 0 = none
  bool run_active_ = false;
  std::size_t completed_ = 0;
  std::uint32_t next_env_id_ = 1;
  /// Radio the platform was constructed with; each run's mobility plan
  /// replays from this base configuration.
  net::LinkConfig base_link_;
  /// Connectivity returns at this virtual time (0 = link attached).
  sim::SimTime link_down_until_ = 0;

  const android::MobileApp& app_for(workloads::Kind kind);
  const device::MobileDevice& device_for(std::uint32_t device_id);

  /// Per-app offloading-decision history (adaptive mode).
  struct DecisionState {
    double ewma_remote_s = 0;  ///< observed offload responses
    double ewma_local_s = 0;   ///< known local execution times
    std::uint32_t samples = 0;
  };
  std::map<std::string, DecisionState> decisions_;
};

}  // namespace rattrap::core
