#include "core/cac.hpp"

#include <cassert>

namespace rattrap::core {

CloudAndroidContainer::CloudAndroidContainer(
    CacConfig config, container::ContainerRuntime& runtime,
    kernel::AndroidContainerDriver& driver)
    : config_(std::move(config)), runtime_(runtime), driver_(driver) {
  container::ContainerConfig cc;
  cc.name = config_.name;
  cc.lower_layers = config_.lower_layers;
  cc.cpu_shares = config_.cpu_shares;
  cc.memory_limit = config_.memory_limit;
  cc.required_features = {kernel::kFeatureBinder, kernel::kFeatureAlarm,
                          kernel::kFeatureLogger, kernel::kFeatureAshmem,
                          kernel::kFeatureSwSync};
  container_ = &runtime_.create(cc);
  cid_ = container_->id();
}

CloudAndroidContainer::~CloudAndroidContainer() {
  // The runtime owns the container object; we only release driver pins.
  if (pinned_) {
    kernel::AndroidContainerDriver::unpin(runtime_.kernel());
    pinned_ = false;
  }
}

std::optional<sim::SimDuration> CloudAndroidContainer::start_container(
    kernel::HostKernel& kernel) {
  sim::SimDuration cost = 0;
  // Dynamically extend the kernel on first use — the Android Container
  // Driver's whole point: no recompile, no reboot (§IV-B1).
  if (!kernel::AndroidContainerDriver::loaded(kernel)) {
    cost += driver_.load(kernel);
  }
  const auto start_cost = runtime_.start(cid_);
  if (!start_cost) return std::nullopt;
  cost += *start_cost;
  // Rootfs integrity: a CAC without the framework core cannot boot (a
  // mis-assembled shared layer must fail fast, not crash zygote later).
  if (container_->rootfs() == nullptr ||
      !container_->rootfs()->exists("/system/framework/core0.jar")) {
    runtime_.stop(cid_);
    return std::nullopt;
  }
  kernel::AndroidContainerDriver::pin(kernel);
  pinned_ = true;
  return cost;
}

android::UserspaceBoot CloudAndroidContainer::userspace_boot() const {
  return android::container_userspace_boot(config_.profile,
                                           config_.warm_shared_layer);
}

void CloudAndroidContainer::finish_boot(sim::SimTime now) {
  assert(container_ != nullptr);
  if (container_->state() != container::ContainerState::kRunning) {
    // The container died (crash injection) between start and boot
    // completion; the boot event is stale and must not touch dead state.
    return;
  }
  booted_ = true;
  // init's property service comes up first and publishes the build info
  // plus the faked-service markers.
  android::populate_cac_properties(
      properties_, config_.name,
      config_.profile == android::OsProfile::kCustomized);
  // The Android process tree the modified init brings up.
  auto& pid_ns = container_->namespaces().pid;
  pid_ns.spawn("init");
  pid_ns.spawn("servicemanager");
  pid_ns.spawn("zygote");
  pid_ns.spawn("system_server");
  pid_ns.spawn("offloadcontroller");
  // Register core services with the per-namespace binder context.
  const kernel::DevNsId ns = container_->devns();
  auto& binder = driver_.binder();
  const kernel::BinderHandle system_server = binder.create_endpoint(ns);
  for (const auto& spec :
       (config_.profile == android::OsProfile::kStock
            ? android::stock_services()
            : android::customized_services())) {
    binder.register_service(ns, spec.name, system_server);
  }
  // Seed the private layer (app data dirs, logs) — the per-CAC delta.
  if (container_->rootfs() != nullptr) {
    container_->rootfs()->write("/data/local/app-data.bin",
                                config_.private_seed_bytes * 3 / 4, now);
    container_->rootfs()->write("/data/misc/boot.log",
                                config_.private_seed_bytes / 4, now);
  }
  // Charge the runtime's resident memory against the cgroup.
  const std::uint64_t memory = boot_memory();
  if (container_->cgroup() != nullptr &&
      container_->cgroup()->charge_memory(memory)) {
    charged_memory_ = memory;
  }
}

void CloudAndroidContainer::shutdown(kernel::HostKernel& kernel) {
  if (container_ != nullptr) {
    if (charged_memory_ > 0 && container_->cgroup() != nullptr) {
      container_->cgroup()->uncharge_memory(charged_memory_);
      charged_memory_ = 0;
    }
    container_->stop();
  }
  if (pinned_) {
    kernel::AndroidContainerDriver::unpin(kernel);
    pinned_ = false;
  }
  booted_ = false;
}

void CloudAndroidContainer::crash(kernel::HostKernel& kernel) {
  crashed_ = true;
  if (container_ != nullptr) {
    if (charged_memory_ > 0 && container_->cgroup() != nullptr) {
      container_->cgroup()->uncharge_memory(charged_memory_);
      charged_memory_ = 0;
    }
    runtime_.crash(cid_);
  }
  if (pinned_) {
    kernel::AndroidContainerDriver::unpin(kernel);
    pinned_ = false;
  }
  booted_ = false;
}

std::uint64_t CloudAndroidContainer::private_disk_bytes() const {
  return container_ == nullptr ? 0 : container_->private_disk_bytes();
}

std::uint64_t CloudAndroidContainer::reclaim_private_layer() {
  if (container_ == nullptr || container_->rootfs() == nullptr) return 0;
  return container_->rootfs()->purge_top_layer();
}

std::uint64_t CloudAndroidContainer::boot_memory() const {
  return userspace_boot().boot_memory;
}

}  // namespace rattrap::core
