// Invariant checker: cross-component consistency validation.
//
// Fault injection is only as good as the oracle judging the aftermath.
// This harness holds a set of named predicates over platform state —
// "no session is bound to a dead container", "the shared tmpfs holds
// exactly the live offload files" — and evaluates all of them after every
// simulator event (via Simulator::set_post_event_hook).  A violation is
// recorded with the virtual time and a human-readable detail string so a
// failing seed can be replayed and diagnosed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rattrap::core {

struct InvariantViolation {
  std::string name;    ///< which invariant tripped
  std::string detail;  ///< what the predicate saw
  sim::SimTime when = 0;
  std::uint64_t event_index = 0;  ///< how many checks had run before this
};

class InvariantChecker {
 public:
  /// A check returns std::nullopt when the invariant holds, or a detail
  /// string describing the inconsistency when it is violated.
  using Check = std::function<std::optional<std::string>()>;

  void add_invariant(std::string name, Check check);

  /// Evaluates every registered invariant at virtual time `now`.
  /// Returns true when all hold.  Violations are recorded (up to
  /// `max_recorded()` of them; the counter keeps counting past the cap).
  bool run(sim::SimTime now);

  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] std::uint64_t total_violations() const {
    return total_violations_;
  }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t invariant_count() const {
    return invariants_.size();
  }

  /// First recorded violation, or nullptr when everything held.
  [[nodiscard]] const InvariantViolation* first_violation() const {
    return violations_.empty() ? nullptr : &violations_.front();
  }

  /// One line per recorded violation: "<time>us <name>: <detail>".
  [[nodiscard]] std::string report() const;

  void set_max_recorded(std::size_t max) { max_recorded_ = max; }
  [[nodiscard]] std::size_t max_recorded() const { return max_recorded_; }

 private:
  struct Invariant {
    std::string name;
    Check check;
  };

  std::vector<Invariant> invariants_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t checks_run_ = 0;
  std::size_t max_recorded_ = 64;
};

}  // namespace rattrap::core
