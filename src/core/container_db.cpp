#include "core/container_db.hpp"

namespace rattrap::core {

const char* to_string(EnvState state) {
  switch (state) {
    case EnvState::kProvisioning:
      return "provisioning";
    case EnvState::kIdle:
      return "idle";
    case EnvState::kBusy:
      return "busy";
    case EnvState::kRetired:
      return "retired";
  }
  return "?";
}

EnvRecord& ContainerDb::add(EnvId id, EnvBacking backing,
                            std::string bound_key, sim::SimTime now) {
  EnvRecord record;
  record.id = id;
  record.backing = backing;
  record.state = EnvState::kProvisioning;
  record.provisioned_at = now;
  record.bound_key = std::move(bound_key);
  auto [it, inserted] = envs_.insert_or_assign(id, std::move(record));
  (void)inserted;
  return it->second;
}

EnvRecord* ContainerDb::find(EnvId id) {
  const auto it = envs_.find(id);
  return it == envs_.end() ? nullptr : &it->second;
}

const EnvRecord* ContainerDb::find(EnvId id) const {
  const auto it = envs_.find(id);
  return it == envs_.end() ? nullptr : &it->second;
}

EnvRecord* ContainerDb::find_by_key(std::string_view key) {
  for (auto& [id, record] : envs_) {
    (void)id;
    if (record.bound_key == key && record.state != EnvState::kRetired) {
      return &record;
    }
  }
  return nullptr;
}

bool ContainerDb::retire(EnvId id) {
  EnvRecord* record = find(id);
  if (record == nullptr || record->state == EnvState::kRetired) return false;
  record->state = EnvState::kRetired;
  return true;
}

std::size_t ContainerDb::count_in(EnvState state) const {
  std::size_t n = 0;
  for (const auto& [id, record] : envs_) {
    (void)id;
    if (record.state == state) ++n;
  }
  return n;
}

std::size_t ContainerDb::active_count() const {
  return count() - count_in(EnvState::kRetired);
}

std::vector<EnvId> ContainerDb::ids() const {
  std::vector<EnvId> out;
  out.reserve(envs_.size());
  for (const auto& [id, record] : envs_) {
    (void)record;
    out.push_back(id);
  }
  return out;
}

}  // namespace rattrap::core
