#include "core/container_db.hpp"

#include <algorithm>

namespace rattrap::core {

const char* to_string(EnvState state) {
  switch (state) {
    case EnvState::kProvisioning:
      return "provisioning";
    case EnvState::kIdle:
      return "idle";
    case EnvState::kBusy:
      return "busy";
    case EnvState::kDraining:
      return "draining";
    case EnvState::kRetired:
      return "retired";
  }
  return "?";
}

void ContainerDb::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_added_ = metric_retired_ = nullptr;
    metric_active_ = nullptr;
    return;
  }
  metric_added_ = &metrics->counter("envdb.added");
  metric_retired_ = &metrics->counter("envdb.retired");
  metric_active_ = &metrics->gauge("envdb.active");
}

void ContainerDb::index_key(const std::string& key, EnvId id) {
  std::vector<EnvId>& ids = by_key_[key];
  ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
}

void ContainerDb::unindex_key(const std::string& key, EnvId id) {
  std::vector<EnvId>* ids = by_key_.find(key);
  if (ids == nullptr) return;
  const auto it = std::lower_bound(ids->begin(), ids->end(), id);
  if (it != ids->end() && *it == id) ids->erase(it);
  if (ids->empty()) by_key_.erase(key);
}

EnvRecord& ContainerDb::add(EnvId id, EnvBacking backing,
                            std::string bound_key, sim::SimTime now) {
  EnvRecord record;
  record.id = id;
  record.backing = backing;
  record.state = EnvState::kProvisioning;
  record.provisioned_at = now;
  record.bound_key = std::move(bound_key);

  EnvRecord* stored;
  if (const std::uint32_t* slot = by_id_.find(id)) {
    // Re-registration of an existing id replaces the record in place
    // (insert_or_assign semantics of the original ordered map).
    stored = &records_[*slot];
    unindex_key(stored->bound_key, id);
    *stored = std::move(record);
  } else {
    const auto fresh = static_cast<std::uint32_t>(records_.size());
    records_.push_back(std::move(record));
    by_id_.insert_or_assign(id, fresh);
    stored = &records_.back();
  }
  index_key(stored->bound_key, id);
  if (metric_added_ != nullptr) {
    metric_added_->inc();
    metric_active_->set(static_cast<double>(active_count()));
  }
  return *stored;
}

EnvRecord* ContainerDb::find(EnvId id) {
  const std::uint32_t* slot = by_id_.find(id);
  return slot == nullptr ? nullptr : &records_[*slot];
}

const EnvRecord* ContainerDb::find(EnvId id) const {
  const std::uint32_t* slot = by_id_.find(id);
  return slot == nullptr ? nullptr : &records_[*slot];
}

EnvRecord* ContainerDb::find_by_key(std::string_view key) {
  const std::vector<EnvId>* ids = by_key_.find(key);
  if (ids == nullptr) return nullptr;
  for (const EnvId id : *ids) {  // ascending: lowest live id wins
    EnvRecord* record = find(id);
    if (record != nullptr && record->state != EnvState::kRetired) {
      return record;
    }
  }
  return nullptr;
}

bool ContainerDb::rebind(EnvId id, std::string key) {
  EnvRecord* record = find(id);
  if (record == nullptr) return false;
  if (record->bound_key == key) return true;
  unindex_key(record->bound_key, id);
  record->bound_key = std::move(key);
  index_key(record->bound_key, id);
  return true;
}

bool ContainerDb::retire(EnvId id) {
  EnvRecord* record = find(id);
  if (record == nullptr || record->state == EnvState::kRetired) return false;
  record->state = EnvState::kRetired;
  if (metric_retired_ != nullptr) {
    metric_retired_->inc();
    metric_active_->set(static_cast<double>(active_count()));
  }
  return true;
}

std::size_t ContainerDb::count_in(EnvState state) const {
  std::size_t n = 0;
  for (const EnvRecord& record : records_) {
    if (record.state == state) ++n;
  }
  return n;
}

std::size_t ContainerDb::active_count() const {
  return count() - count_in(EnvState::kRetired);
}

std::vector<EnvId> ContainerDb::ids() const {
  std::vector<EnvId> out;
  out.reserve(records_.size());
  for (const EnvRecord& record : records_) out.push_back(record.id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rattrap::core
