#include "core/container_db.hpp"

namespace rattrap::core {

const char* to_string(EnvState state) {
  switch (state) {
    case EnvState::kProvisioning:
      return "provisioning";
    case EnvState::kIdle:
      return "idle";
    case EnvState::kBusy:
      return "busy";
    case EnvState::kDraining:
      return "draining";
    case EnvState::kRetired:
      return "retired";
  }
  return "?";
}

void ContainerDb::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_added_ = metric_retired_ = nullptr;
    metric_active_ = nullptr;
    return;
  }
  metric_added_ = &metrics->counter("envdb.added");
  metric_retired_ = &metrics->counter("envdb.retired");
  metric_active_ = &metrics->gauge("envdb.active");
}

EnvRecord& ContainerDb::add(EnvId id, EnvBacking backing,
                            std::string bound_key, sim::SimTime now) {
  EnvRecord record;
  record.id = id;
  record.backing = backing;
  record.state = EnvState::kProvisioning;
  record.provisioned_at = now;
  record.bound_key = std::move(bound_key);
  auto [it, inserted] = envs_.insert_or_assign(id, std::move(record));
  (void)inserted;
  if (metric_added_ != nullptr) {
    metric_added_->inc();
    metric_active_->set(static_cast<double>(active_count()));
  }
  return it->second;
}

EnvRecord* ContainerDb::find(EnvId id) {
  const auto it = envs_.find(id);
  return it == envs_.end() ? nullptr : &it->second;
}

const EnvRecord* ContainerDb::find(EnvId id) const {
  const auto it = envs_.find(id);
  return it == envs_.end() ? nullptr : &it->second;
}

EnvRecord* ContainerDb::find_by_key(std::string_view key) {
  for (auto& [id, record] : envs_) {
    (void)id;
    if (record.bound_key == key && record.state != EnvState::kRetired) {
      return &record;
    }
  }
  return nullptr;
}

bool ContainerDb::retire(EnvId id) {
  EnvRecord* record = find(id);
  if (record == nullptr || record->state == EnvState::kRetired) return false;
  record->state = EnvState::kRetired;
  if (metric_retired_ != nullptr) {
    metric_retired_->inc();
    metric_active_->set(static_cast<double>(active_count()));
  }
  return true;
}

std::size_t ContainerDb::count_in(EnvState state) const {
  std::size_t n = 0;
  for (const auto& [id, record] : envs_) {
    (void)id;
    if (record.state == state) ++n;
  }
  return n;
}

std::size_t ContainerDb::active_count() const {
  return count() - count_in(EnvState::kRetired);
}

std::vector<EnvId> ContainerDb::ids() const {
  std::vector<EnvId> out;
  out.reserve(envs_.size());
  for (const auto& [id, record] : envs_) {
    (void)record;
    out.push_back(id);
  }
  return out;
}

}  // namespace rattrap::core
