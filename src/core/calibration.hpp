// Calibration constants for the Rattrap reproduction.
//
// Everything the simulation cannot derive from first principles is pinned
// here, calibrated against the measurements the paper reports (§V, §VI).
// Keeping all magic numbers in one translation unit makes the
// paper-vs-model mapping auditable.
#pragma once

#include <cstdint>

#include "device/device.hpp"
#include "fs/disk.hpp"
#include "sim/time.hpp"

namespace rattrap::core {

struct Calibration {
  // --- server hardware (§V: 2× six-core Xeon X5650, 16 GB, 300 GB HDD) --
  std::uint32_t server_cores = 12;
  std::uint64_t server_memory = 16ull * 1024 * 1024 * 1024;
  std::uint64_t server_disk = 300ull * 1024 * 1024 * 1024;
  fs::DiskConfig disk;  // defaults model the HDD

  // --- execution rates (work units/s of the Android runtime on one
  //     server core at native speed; phones are device::phone_rates()) ---
  device::KindRates server_rates{};

  // --- virtualization overheads --------------------------------------
  double vm_cpu_factor = 0.92;  ///< guest compute speed vs native
  double vm_io_factor = 0.55;   ///< guest I/O throughput vs native
  double container_cpu_factor = 0.995;  ///< near-native (§II-B)

  // --- Sharing Offloading I/O ------------------------------------------
  double tmpfs_mb_s = 2600.0;   ///< in-memory filesystem bandwidth
  std::uint64_t tmpfs_capacity = 2ull * 1024 * 1024 * 1024;

  // --- environment configs ---------------------------------------------
  std::uint64_t vm_memory = 512ull * 1024 * 1024;       // Table I
  std::uint64_t cac_plain_memory = 128ull * 1024 * 1024;
  std::uint64_t cac_opt_memory = 96ull * 1024 * 1024;

  // --- platform-side fixed costs ---------------------------------------
  sim::SimDuration dispatcher_cost = sim::from_millis(2);
  sim::SimDuration access_analysis_cost = sim::from_millis(55);
  sim::SimDuration access_check_cost = sim::from_millis(1);
  /// Dispatcher handshake after boot before an env is "connected".
  sim::SimDuration env_register_cost = sim::from_millis(35);

  /// Warehouse cache-table lookup.
  sim::SimDuration warehouse_lookup_cost = sim::from_millis(1);
};

/// Process-wide default calibration.
[[nodiscard]] const Calibration& default_calibration();

}  // namespace rattrap::core
