// Request-based Access Controller (§IV-E), grown into a stateful
// multi-tenant defense layer.
//
// Containers isolate less strongly than VMs and the shared-based
// architecture (Shared Resource Layer, App Warehouse) is attackable by
// malicious offloaded code.  The controller analyzes each app's first
// request to generate a permission table (shared by all requests of that
// app), filters every workflow leaving a Cloud Android Container against
// it, and accrues violations into a per-tenant ledger.  When a tenant's
// ledger reaches the violation threshold the tenant is blocked: every
// live session is swept out by the platform (the on_block hook), new
// sessions are denied at the front door, and — with a finite
// block_duration — service is restored after the penalty window with the
// ledger wiped (docs/RAC.md).
//
// The controller also meters per-tenant in-flight concurrency
// (tenant_quota): a flooding tenant is clipped with a typed
// kQuotaExceeded before its sessions ever reach the QoS queues.
//
// Every deny path increments exactly one rac.denied.<reason> counter, so
// the metrics ledger accounts for every filtered operation and refused
// session (no silent drops).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace rattrap::core {

/// Operations a workflow out of a container can attempt.
enum class Operation : std::uint8_t {
  kReadOffloadFile,    ///< read this request's transferred files
  kWriteOffloadFile,   ///< write results into the offloading I/O layer
  kReadSharedLayer,    ///< read common system files
  kWriteSharedLayer,   ///< attempt to modify shared system files
  kReadWarehouse,      ///< fetch own cached code
  kReadForeignCode,    ///< touch another app's cached code
  kNetworkEgress,      ///< open outbound connections
  kBinderCall,         ///< talk to system services
};

/// Number of operations (dense from 0; the RPC codec validates wire
/// codes against this bound).
inline constexpr std::size_t kOperationCount =
    static_cast<std::size_t>(Operation::kBinderCall) + 1;

[[nodiscard]] const char* to_string(Operation op);

/// Why the controller refused something (the typed deny reasons the
/// rac.denied.<reason> counters are keyed by).
enum class AccessDeny : std::uint8_t {
  kNone = 0,   ///< allowed
  kBlocked,    ///< tenant is inside a block window
  kViolation,  ///< operation outside the app's permission table
  kQuota,      ///< tenant at its in-flight session quota
};

[[nodiscard]] const char* to_string(AccessDeny deny);

/// Defense-layer policy (PlatformConfig::access).
struct AccessConfig {
  /// Tenant-ledger violations at which the tenant gets blocked.
  std::uint32_t violation_threshold = 5;
  /// Penalty window; 0 blocks permanently (no automatic unblock).
  sim::SimDuration block_duration = 0;
  /// Max in-flight sessions per tenant; 0 disables the quota.
  std::uint32_t tenant_quota = 0;
};

struct PermissionTable {
  std::set<Operation> allowed;
};

/// Per-tenant defense state: the violation ledger and block lifecycle.
struct TenantLedger {
  std::uint32_t violations = 0;  ///< since last unblock
  std::uint32_t in_flight = 0;   ///< sessions holding a quota slot
  bool blocked = false;
  sim::SimTime blocked_until = 0;  ///< kTimeInfinity = permanent
  // Lifetime totals (monotone; the property battery leans on these).
  std::uint32_t total_violations = 0;
  std::uint32_t blocks = 0;
  std::uint32_t unblocks = 0;
};

class RequestAccessController {
 public:
  RequestAccessController() = default;
  explicit RequestAccessController(std::uint32_t violation_threshold) {
    config_.violation_threshold = violation_threshold;
  }

  /// Applies policy; the platform calls this once before traffic starts.
  void configure(const AccessConfig& config) { config_ = config; }
  [[nodiscard]] const AccessConfig& config() const { return config_; }

  /// Attaches rac.* instruments (cached handles); nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Fires when a tenant crosses the violation threshold — the platform
  /// sweeps the tenant's live sessions so it consumes zero container
  /// time past this instant (invariant #14).
  void on_block(std::function<void(const std::string&, sim::SimTime)> hook) {
    on_block_ = std::move(hook);
  }
  /// Fires when a block window expires and service is restored.
  void on_unblock(std::function<void(const std::string&, sim::SimTime)> hook) {
    on_unblock_ = std::move(hook);
  }

  /// Ensures a permission table exists for `app_id`; returns true when a
  /// fresh analysis ran (which costs the analysis time, once per app —
  /// "the analysis happens only once for each mobile app").
  bool ensure_analyzed(std::string_view app_id);

  /// Filters one operation of `app_id` running under `tenant`.
  /// Disallowed operations are denied and recorded in the tenant's
  /// ledger; crossing the threshold blocks the tenant (on_block fires
  /// before this returns).  A blocked tenant is denied outright without
  /// accruing further violations.
  AccessDeny check(std::string_view app_id, const std::string& tenant,
                   Operation op, sim::SimTime now);

  /// Front-door gate for open_session: denies blocked tenants (counting
  /// the deny) without touching quota state.
  AccessDeny allow_open(const std::string& tenant, sim::SimTime now);

  /// Per-request gate: denies blocked tenants, then acquires an
  /// in-flight quota slot (kQuota when the tenant is at its cap).  Every
  /// kNone return must be paired with release() on session teardown.
  AccessDeny admit(const std::string& tenant, sim::SimTime now);
  void release(const std::string& tenant);

  /// Lazily applies time-based unblocking, then reports block state.
  [[nodiscard]] bool is_blocked(const std::string& tenant, sim::SimTime now);
  /// Pure observation at `now` — no lifecycle side effects (invariants).
  [[nodiscard]] bool blocked_at(const std::string& tenant,
                                sim::SimTime now) const;

  [[nodiscard]] std::uint32_t violations(const std::string& tenant) const;
  [[nodiscard]] const TenantLedger* ledger(const std::string& tenant) const;
  [[nodiscard]] bool analyzed(std::string_view app_id) const;
  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
  [[nodiscard]] std::size_t blocked_count() const { return blocked_count_; }
  [[nodiscard]] std::uint32_t threshold() const {
    return config_.violation_threshold;
  }

  /// The default permission set granted to offloading apps: everything an
  /// honest offloaded task needs, nothing that attacks shared state.
  [[nodiscard]] static std::set<Operation> default_grants();

 private:
  TenantLedger& ledger_for(const std::string& tenant);
  /// Expires the block window if its deadline passed (resets the
  /// violation ledger, fires on_unblock).
  void maybe_unblock(const std::string& tenant, TenantLedger& ledger,
                     sim::SimTime now);
  void block(const std::string& tenant, TenantLedger& ledger,
             sim::SimTime now);
  void count_deny(AccessDeny deny);

  AccessConfig config_;
  std::map<std::string, PermissionTable, std::less<>> tables_;
  std::map<std::string, TenantLedger, std::less<>> ledgers_;
  std::size_t blocked_count_ = 0;
  std::function<void(const std::string&, sim::SimTime)> on_block_;
  std::function<void(const std::string&, sim::SimTime)> on_unblock_;
  // Cached rac.* handles (docs/OBSERVABILITY.md); null when detached.
  obs::Counter* metric_analyzed_ = nullptr;
  obs::Counter* metric_violations_ = nullptr;
  obs::Counter* metric_blocks_ = nullptr;
  obs::Counter* metric_unblocks_ = nullptr;
  obs::Counter* metric_denied_blocked_ = nullptr;
  obs::Counter* metric_denied_violation_ = nullptr;
  obs::Counter* metric_denied_quota_ = nullptr;
  obs::Gauge* metric_blocked_tenants_ = nullptr;
};

}  // namespace rattrap::core
