// Request-based Access Controller (§IV-E).
//
// Containers isolate less strongly than VMs and the shared-based
// architecture (Shared Resource Layer, App Warehouse) is attackable by
// malicious offloaded code.  The controller analyzes each app's first
// request to generate a permission table (shared by all requests of that
// app), filters every workflow leaving a Cloud Android Container against
// it, counts violations, and blocks the app once violations reach a
// threshold.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rattrap::core {

/// Operations a workflow out of a container can attempt.
enum class Operation : std::uint8_t {
  kReadOffloadFile,    ///< read this request's transferred files
  kWriteOffloadFile,   ///< write results into the offloading I/O layer
  kReadSharedLayer,    ///< read common system files
  kWriteSharedLayer,   ///< attempt to modify shared system files
  kReadWarehouse,      ///< fetch own cached code
  kReadForeignCode,    ///< touch another app's cached code
  kNetworkEgress,      ///< open outbound connections
  kBinderCall,         ///< talk to system services
};

[[nodiscard]] const char* to_string(Operation op);

struct PermissionTable {
  std::set<Operation> allowed;
  std::uint32_t violations = 0;
};

class RequestAccessController {
 public:
  /// `violation_threshold`: violations at which an app gets blocked.
  explicit RequestAccessController(std::uint32_t violation_threshold = 5)
      : threshold_(violation_threshold) {}

  /// Ensures a permission table exists for `app_id`; returns true when a
  /// fresh analysis ran (which costs the analysis time, once per app —
  /// "the analysis happens only once for each mobile app").
  bool ensure_analyzed(std::string_view app_id);

  /// Filters one operation. Disallowed operations are recorded as
  /// violations and rejected (returns false).  A blocked app rejects
  /// everything.
  bool check(std::string_view app_id, Operation op);

  [[nodiscard]] bool is_blocked(std::string_view app_id) const;
  [[nodiscard]] std::uint32_t violations(std::string_view app_id) const;
  [[nodiscard]] bool analyzed(std::string_view app_id) const;
  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
  [[nodiscard]] std::uint32_t threshold() const { return threshold_; }

  /// The default permission set granted to offloading apps: everything an
  /// honest offloaded task needs, nothing that attacks shared state.
  [[nodiscard]] static std::set<Operation> default_grants();

 private:
  std::uint32_t threshold_;
  std::map<std::string, PermissionTable, std::less<>> tables_;
  std::set<std::string, std::less<>> blocked_;
};

}  // namespace rattrap::core
