// Monitor & Scheduler: server-load accounting at process level.
//
// The paper's Monitor & Scheduler "conducts resource scheduling at
// process-level, rather than at VM-level" (§IV-A).  This component tracks
// CPU busy time per second (the Fig. 2 CPU timeline), allocates cores to
// compute jobs, and exposes utilization for scheduling decisions.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <set>

#include "core/qos/qos.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rattrap::core {

class MonitorScheduler {
 public:
  MonitorScheduler(sim::Simulator& simulator, std::uint32_t cores)
      : sim_(simulator), cores_(cores) {}

  /// Records `cores` CPU(s) busy over [t0, t1) (core-µs into the series).
  void record_cpu(sim::SimTime t0, sim::SimTime t1, double cores = 1.0);

  /// CPU utilization (0–100 %) of bucket `second`, normalized to the
  /// number of cores *in use by runtime environments* (`active_envs`);
  /// the paper's Fig. 2 plots the guest-visible utilization, which pins
  /// at 100 % when every environment is computing.
  [[nodiscard]] double cpu_percent(std::size_t second,
                                   double active_envs) const;

  /// Raw busy core-seconds in bucket `second`.
  [[nodiscard]] double busy_core_seconds(std::size_t second) const;

  [[nodiscard]] const sim::TimeSeries& cpu_series() const { return cpu_; }
  [[nodiscard]] std::uint32_t cores() const { return cores_; }

  /// Total busy core-time recorded.
  [[nodiscard]] sim::SimDuration total_busy() const { return total_busy_; }

  /// Currently running compute jobs (informational, for scheduling).
  /// Jobs are accounted per QoS class so the scheduler can see which
  /// traffic tier is occupying the compute plane (docs/QOS.md).
  void job_started(
      qos::PriorityClass klass = qos::PriorityClass::kStandard) {
    ++running_jobs_;
    ++running_by_class_[qos::class_index(klass)];
    if (metric_jobs_ != nullptr) {
      metric_jobs_->set(static_cast<double>(running_jobs_));
      metric_jobs_peak_->set(
          std::max(metric_jobs_peak_->value(),
                   static_cast<double>(running_jobs_)));
    }
    if (metric_class_jobs_[qos::class_index(klass)] != nullptr) {
      metric_class_jobs_[qos::class_index(klass)]->set(static_cast<double>(
          running_by_class_[qos::class_index(klass)]));
    }
  }
  void job_finished(
      qos::PriorityClass klass = qos::PriorityClass::kStandard) {
    if (running_jobs_ > 0) --running_jobs_;
    auto& by_class = running_by_class_[qos::class_index(klass)];
    if (by_class > 0) --by_class;
    if (metric_jobs_ != nullptr) {
      metric_jobs_->set(static_cast<double>(running_jobs_));
    }
    if (metric_class_jobs_[qos::class_index(klass)] != nullptr) {
      metric_class_jobs_[qos::class_index(klass)]->set(
          static_cast<double>(by_class));
    }
  }
  [[nodiscard]] std::uint32_t running_jobs() const { return running_jobs_; }
  [[nodiscard]] std::uint32_t running_jobs(qos::PriorityClass klass) const {
    return running_by_class_[qos::class_index(klass)];
  }

  /// Instantaneous compute-plane utilization: running jobs per core.
  /// > 1 means the processor-sharing model is stretching every job —
  /// the saturation signal admission control sheds on.
  [[nodiscard]] double load_fraction() const {
    return cores_ > 0 ? static_cast<double>(running_jobs_) /
                            static_cast<double>(cores_)
                      : 0.0;
  }

  /// Attaches a metrics registry: job slots maintain monitor.running_jobs
  /// / monitor.peak_jobs and crash detection counts into
  /// monitor.crashes.* . nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

  // -- Live-environment tracking (docs/ELASTIC.md) ----------------------
  //
  // The p2c placement probe folds the shard's live environment count
  // into its load score.  The count is invalidated on *every* teardown
  // path — idle reclaim, drain completion and crash alike — otherwise
  // the signal goes stale across reclaim and a shard whose warm capacity
  // just drained keeps winning placements it can only serve cold.

  void env_up(std::uint32_t env_id);
  void env_down(std::uint32_t env_id);
  [[nodiscard]] std::size_t active_envs() const {
    return live_envs_.size();
  }

  // -- Crashed-environment detection -----------------------------------
  //
  // The Monitor's health sweep notices a CAC whose processes vanished and
  // tells the platform, which re-dispatches the sessions that were bound
  // to it. Detection is not instantaneous: the sweep runs on an interval,
  // so a crashed environment stays undetected for up to
  // detection_latency() of virtual time.

  /// Platform recovery hook, invoked once per detected crash.
  void set_crash_handler(std::function<void(std::uint32_t env_id)> handler) {
    crash_handler_ = std::move(handler);
  }

  void set_detection_latency(sim::SimDuration latency) {
    detection_latency_ = latency;
  }
  [[nodiscard]] sim::SimDuration detection_latency() const {
    return detection_latency_;
  }

  /// Reports that environment `env_id` just died; the next health sweep
  /// (after detection_latency()) detects it and fires the crash handler.
  void notify_crash(std::uint32_t env_id);

  /// A crash of `env_id` has been reported but not yet detected.
  [[nodiscard]] bool crash_pending(std::uint32_t env_id) const {
    return pending_crashes_.contains(env_id);
  }
  [[nodiscard]] std::uint64_t crashes_reported() const { return reported_; }
  [[nodiscard]] std::uint64_t crashes_detected() const { return detected_; }

 private:
  sim::Simulator& sim_;
  std::uint32_t cores_;
  sim::TimeSeries cpu_{sim::kSecond};
  sim::SimDuration total_busy_ = 0;
  std::uint32_t running_jobs_ = 0;
  std::array<std::uint32_t, qos::kClassCount> running_by_class_{};
  std::function<void(std::uint32_t)> crash_handler_;
  sim::SimDuration detection_latency_ = 100 * sim::kMillisecond;
  std::set<std::uint32_t> pending_crashes_;
  std::set<std::uint32_t> live_envs_;
  std::uint64_t reported_ = 0;
  std::uint64_t detected_ = 0;
  obs::Gauge* metric_jobs_ = nullptr;
  obs::Gauge* metric_active_envs_ = nullptr;
  obs::Gauge* metric_jobs_peak_ = nullptr;
  std::array<obs::Gauge*, qos::kClassCount> metric_class_jobs_{};
  obs::Counter* metric_crashes_reported_ = nullptr;
  obs::Counter* metric_crashes_detected_ = nullptr;
};

}  // namespace rattrap::core
