// Monitor & Scheduler: server-load accounting at process level.
//
// The paper's Monitor & Scheduler "conducts resource scheduling at
// process-level, rather than at VM-level" (§IV-A).  This component tracks
// CPU busy time per second (the Fig. 2 CPU timeline), allocates cores to
// compute jobs, and exposes utilization for scheduling decisions.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rattrap::core {

class MonitorScheduler {
 public:
  MonitorScheduler(sim::Simulator& simulator, std::uint32_t cores)
      : sim_(simulator), cores_(cores) {}

  /// Records `cores` CPU(s) busy over [t0, t1) (core-µs into the series).
  void record_cpu(sim::SimTime t0, sim::SimTime t1, double cores = 1.0);

  /// CPU utilization (0–100 %) of bucket `second`, normalized to the
  /// number of cores *in use by runtime environments* (`active_envs`);
  /// the paper's Fig. 2 plots the guest-visible utilization, which pins
  /// at 100 % when every environment is computing.
  [[nodiscard]] double cpu_percent(std::size_t second,
                                   double active_envs) const;

  /// Raw busy core-seconds in bucket `second`.
  [[nodiscard]] double busy_core_seconds(std::size_t second) const;

  [[nodiscard]] const sim::TimeSeries& cpu_series() const { return cpu_; }
  [[nodiscard]] std::uint32_t cores() const { return cores_; }

  /// Total busy core-time recorded.
  [[nodiscard]] sim::SimDuration total_busy() const { return total_busy_; }

  /// Currently running compute jobs (informational, for scheduling).
  void job_started() { ++running_jobs_; }
  void job_finished() {
    if (running_jobs_ > 0) --running_jobs_;
  }
  [[nodiscard]] std::uint32_t running_jobs() const { return running_jobs_; }

 private:
  sim::Simulator& sim_;
  std::uint32_t cores_;
  sim::TimeSeries cpu_{sim::kSecond};
  sim::SimDuration total_busy_ = 0;
  std::uint32_t running_jobs_ = 0;
};

}  // namespace rattrap::core
