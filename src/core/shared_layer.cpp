#include "core/shared_layer.hpp"

#include <cassert>

namespace rattrap::core {

SharedResourceLayer::SharedResourceLayer(
    std::shared_ptr<const fs::Layer> system_layer,
    std::uint64_t tmpfs_capacity, double tmpfs_mb_s)
    : system_layer_(std::move(system_layer)),
      offload_io_("offload-io", tmpfs_capacity, tmpfs_mb_s) {
  assert(system_layer_ && "shared layer requires a system image");
}

std::string SharedResourceLayer::request_path(std::uint64_t request_seq) {
  return "/offload/req-" + std::to_string(request_seq) + "/input";
}

bool SharedResourceLayer::stage_request_files(std::uint64_t request_seq,
                                              std::uint64_t bytes,
                                              sim::SimTime now) {
  if (bytes == 0) return true;
  // "Burn after reading": migrated data is a one-time deal (§IV-C).
  if (!offload_io_.write(request_path(request_seq), bytes, now,
                         /*burn_after_reading=*/true)) {
    return false;
  }
  // Restaging (a re-dispatched session uploading again) replaces the
  // previous copy in place, so account the delta.
  auto [it, inserted] = staged_.try_emplace(request_seq, bytes);
  if (!inserted) {
    staged_bytes_ -= it->second;
    it->second = bytes;
  }
  staged_bytes_ += bytes;
  return true;
}

std::uint64_t SharedResourceLayer::consume_request_files(
    std::uint64_t request_seq, sim::SimTime now) {
  const std::int64_t read = offload_io_.read(request_path(request_seq), now);
  if (read < 0) return 0;
  const auto it = staged_.find(request_seq);
  if (it != staged_.end()) {
    staged_bytes_ -= it->second;
    staged_.erase(it);
  }
  return static_cast<std::uint64_t>(read);
}

std::uint64_t SharedResourceLayer::release_request_files(
    std::uint64_t request_seq) {
  const auto it = staged_.find(request_seq);
  if (it == staged_.end()) return 0;
  const std::uint64_t bytes = it->second;
  offload_io_.remove(request_path(request_seq));
  staged_bytes_ -= bytes;
  staged_.erase(it);
  return bytes;
}

}  // namespace rattrap::core
