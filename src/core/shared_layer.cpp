#include "core/shared_layer.hpp"

#include <cassert>

namespace rattrap::core {

SharedResourceLayer::SharedResourceLayer(
    std::shared_ptr<const fs::Layer> system_layer,
    std::uint64_t tmpfs_capacity, double tmpfs_mb_s)
    : system_layer_(std::move(system_layer)),
      offload_io_("offload-io", tmpfs_capacity, tmpfs_mb_s) {
  assert(system_layer_ && "shared layer requires a system image");
}

std::string SharedResourceLayer::request_path(std::uint64_t request_seq) {
  return "/offload/req-" + std::to_string(request_seq) + "/input";
}

void SharedResourceLayer::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_staged_requests_ = metric_bytes_shared_ = nullptr;
    metric_stage_rejected_ = metric_consumed_bytes_ = nullptr;
    metric_released_bytes_ = nullptr;
    metric_used_bytes_ = metric_peak_bytes_ = nullptr;
    return;
  }
  metric_staged_requests_ = &metrics->counter("tmpfs.staged.requests");
  metric_bytes_shared_ = &metrics->counter("tmpfs.bytes_shared");
  metric_stage_rejected_ = &metrics->counter("tmpfs.stage_rejected");
  metric_consumed_bytes_ = &metrics->counter("tmpfs.consumed_bytes");
  metric_released_bytes_ = &metrics->counter("tmpfs.released_bytes");
  metric_used_bytes_ = &metrics->gauge("tmpfs.used_bytes");
  metric_peak_bytes_ = &metrics->gauge("tmpfs.peak_bytes");
}

void SharedResourceLayer::update_usage_metrics() {
  if (metric_used_bytes_ == nullptr) return;
  metric_used_bytes_->set(static_cast<double>(offload_io_.used_bytes()));
  metric_peak_bytes_->set(static_cast<double>(offload_io_.peak_bytes()));
}

bool SharedResourceLayer::stage_request_files(std::uint64_t request_seq,
                                              std::uint64_t bytes,
                                              sim::SimTime now) {
  if (bytes == 0) return true;
  // "Burn after reading": migrated data is a one-time deal (§IV-C).
  if (!offload_io_.write(request_path(request_seq), bytes, now,
                         /*burn_after_reading=*/true)) {
    if (metric_stage_rejected_ != nullptr) metric_stage_rejected_->inc();
    return false;
  }
  // Restaging (a re-dispatched session uploading again) replaces the
  // previous copy in place, so account the delta.
  auto [it, inserted] = staged_.try_emplace(request_seq, bytes);
  if (!inserted) {
    staged_bytes_ -= it->second;
    it->second = bytes;
  }
  staged_bytes_ += bytes;
  if (metric_staged_requests_ != nullptr) {
    metric_staged_requests_->inc();
    metric_bytes_shared_->inc(bytes);
    update_usage_metrics();
  }
  return true;
}

std::uint64_t SharedResourceLayer::consume_request_files(
    std::uint64_t request_seq, sim::SimTime now) {
  const std::int64_t read = offload_io_.read(request_path(request_seq), now);
  if (read < 0) return 0;
  const auto it = staged_.find(request_seq);
  if (it != staged_.end()) {
    staged_bytes_ -= it->second;
    staged_.erase(it);
  }
  if (metric_consumed_bytes_ != nullptr) {
    metric_consumed_bytes_->inc(static_cast<std::uint64_t>(read));
    update_usage_metrics();
  }
  return static_cast<std::uint64_t>(read);
}

std::uint64_t SharedResourceLayer::release_request_files(
    std::uint64_t request_seq) {
  const auto it = staged_.find(request_seq);
  if (it == staged_.end()) return 0;
  const std::uint64_t bytes = it->second;
  offload_io_.remove(request_path(request_seq));
  staged_bytes_ -= bytes;
  staged_.erase(it);
  if (metric_released_bytes_ != nullptr) {
    metric_released_bytes_->inc(bytes);
    update_usage_metrics();
  }
  return bytes;
}

}  // namespace rattrap::core
