#include "core/dispatcher.hpp"

namespace rattrap::core {

std::string Dispatcher::binding_key(const workloads::OffloadRequest& request,
                                    const std::string& app_id) const {
  // Environments are provisioned per device on every platform; with
  // affinity the Dispatcher may *reroute* a request to an app-hot
  // container, but new environments always bind to the requesting device.
  (void)app_id;
  return "dev:" + std::to_string(request.device_id);
}

EnvRecord* Dispatcher::assign(const workloads::OffloadRequest& request,
                              const std::string& app_id, sim::SimTime now,
                              sim::SimDuration backlog_threshold) {
  EnvRecord* device_env =
      db_.find_by_key("dev:" + std::to_string(request.device_id));
  if (!affinity_) return device_env;
  // A device's first request always provisions its own environment (all
  // three platforms pay one boot per device); affinity then *reroutes*
  // subsequent requests to a container that already executed this app —
  // saving the code-loading time — unless that container is backlogged.
  if (device_env == nullptr) return nullptr;
  if (const auto preferred = warehouse_.preferred_env("ref:" + app_id)) {
    EnvRecord* record = db_.find(*preferred);
    // Only reroute onto a container that is actually serving: a retired
    // record is a dead environment (the warehouse learns of crashes
    // asynchronously), and a provisioning one has no Dispatcher
    // registration yet.  Routing to either strands the session.
    if (record != nullptr &&
        (record->state == EnvState::kIdle ||
         record->state == EnvState::kBusy) &&
        record->ready_at > 0 &&
        record->busy_until <= now + backlog_threshold) {
      return record;
    }
  }
  return device_env;
}

}  // namespace rattrap::core
