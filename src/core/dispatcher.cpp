#include "core/dispatcher.hpp"

#include <cstdio>

namespace rattrap::core {

std::string Dispatcher::binding_key(const workloads::OffloadRequest& request,
                                    const std::string& app_id) const {
  // Environments are provisioned per device on every platform; with
  // affinity the Dispatcher may *reroute* a request to an app-hot
  // container, but new environments always bind to the requesting device.
  (void)app_id;
  return "dev:" + std::to_string(request.device_id);
}

void Dispatcher::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    assign_total_ = assign_new_env_ = nullptr;
    assign_by_class_.fill(nullptr);
    affinity_hits_ = affinity_misses_ = nullptr;
    affinity_hit_rate_ = nullptr;
    return;
  }
  assign_total_ = &metrics->counter("dispatcher.assign.total");
  assign_new_env_ = &metrics->counter("dispatcher.assign.new_env");
  for (const qos::PriorityClass klass : qos::kAllClasses) {
    assign_by_class_[qos::class_index(klass)] = &metrics->counter(
        std::string("dispatcher.assign.") + qos::to_string(klass));
  }
  affinity_hits_ = &metrics->counter("dispatcher.affinity.hits");
  affinity_misses_ = &metrics->counter("dispatcher.affinity.misses");
  affinity_hit_rate_ = &metrics->gauge("dispatcher.affinity.hit_rate");
}

EnvRecord* Dispatcher::assign(const workloads::OffloadRequest& request,
                              const std::string& app_id, sim::SimTime now,
                              sim::SimDuration backlog_threshold,
                              qos::PriorityClass klass) {
  const auto finish = [this, klass](EnvRecord* record, bool affinity_hit) {
    if (assign_total_ != nullptr) {
      assign_total_->inc();
      if (record == nullptr) assign_new_env_->inc();
      if (assign_by_class_[qos::class_index(klass)] != nullptr) {
        assign_by_class_[qos::class_index(klass)]->inc();
      }
      if (affinity_) {
        (affinity_hit ? affinity_hits_ : affinity_misses_)->inc();
        const double total = static_cast<double>(affinity_hits_->value() +
                                                 affinity_misses_->value());
        affinity_hit_rate_->set(
            static_cast<double>(affinity_hits_->value()) / total);
      }
    }
    return record;
  };
  // Format the device key on the stack: this runs once per request and
  // the flat key index takes a string_view, so no allocation is needed.
  char device_key[24];
  const int key_len = std::snprintf(device_key, sizeof device_key, "dev:%u",
                                    request.device_id);
  EnvRecord* device_env = db_.find_by_key(
      std::string_view(device_key, static_cast<std::size_t>(key_len)));
  if (!affinity_) return finish(device_env, false);
  // A device's first request always provisions its own environment (all
  // three platforms pay one boot per device); affinity then *reroutes*
  // subsequent requests to a container that already executed this app —
  // saving the code-loading time — unless that container is backlogged.
  if (device_env == nullptr) return finish(nullptr, false);
  if (const auto preferred = warehouse_.preferred_env("ref:" + app_id)) {
    EnvRecord* record = db_.find(*preferred);
    // Only reroute onto a container that is actually serving: a retired
    // record is a dead environment (the warehouse learns of crashes
    // asynchronously), and a provisioning one has no Dispatcher
    // registration yet.  Routing to either strands the session.
    if (record != nullptr &&
        (record->state == EnvState::kIdle ||
         record->state == EnvState::kBusy) &&
        record->ready_at > 0 &&
        record->busy_until <= now + backlog_threshold) {
      return finish(record, true);
    }
  }
  return finish(device_env, false);
}

}  // namespace rattrap::core
