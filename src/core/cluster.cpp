#include "core/cluster.hpp"

#include <cassert>

#include "sim/parallel.hpp"

namespace rattrap::core {

Cluster::Cluster(PlatformConfig config, std::size_t servers) {
  assert(servers > 0);
  servers_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    PlatformConfig per_server = config;
    per_server.seed = config.seed + 7919 * (i + 1);
    servers_.push_back(std::make_unique<Platform>(per_server));
  }
  stats_.servers = servers;
}

std::vector<RequestOutcome> Cluster::run(
    const std::vector<workloads::OffloadRequest>& stream) {
  const std::size_t n = servers_.size();
  // Shard by owning device; renumber sequences per shard so each
  // platform sees a dense stream, then restore the originals.
  std::vector<std::vector<workloads::OffloadRequest>> shards(n);
  std::vector<std::vector<std::uint64_t>> original_sequence(n);
  for (const auto& request : stream) {
    const std::size_t shard = request.device_id % n;
    workloads::OffloadRequest local = request;
    local.sequence = shards[shard].size();
    local.device_id = request.device_id / static_cast<std::uint32_t>(n);
    shards[shard].push_back(local);
    original_sequence[shard].push_back(request.sequence);
  }

  // Servers never interact, so their simulations fan out across hardware
  // threads (kernel executions share the thread-safe process-wide memo).
  // Each shard writes a disjoint set of `merged` slots, and the merge is
  // order-independent — the result is bit-identical to the serial loop.
  std::vector<RequestOutcome> merged(stream.size());
  sim::parallel_for(n, [&](std::size_t shard) {
    if (shards[shard].empty()) return;
    auto outcomes = servers_[shard]->run(shards[shard]);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      RequestOutcome outcome = std::move(outcomes[i]);
      // Restore the caller-visible identifiers.
      const std::uint64_t original = original_sequence[shard][i];
      outcome.request.sequence = original;
      outcome.request.device_id =
          outcome.request.device_id * static_cast<std::uint32_t>(n) +
          static_cast<std::uint32_t>(shard);
      merged[original] = std::move(outcome);
    }
  });

  stats_.environments = 0;
  for (const auto& server : servers_) {
    stats_.environments += server->env_count();
  }
  for (const auto& outcome : merged) {
    stats_.total_up_bytes += outcome.traffic.total_up();
    stats_.total_down_bytes += outcome.traffic.total_down();
    if (outcome.rejected) {
      ++stats_.rejected;
    } else if (outcome.offloading_failure()) {
      ++stats_.failures;
    }
  }
  return merged;
}

}  // namespace rattrap::core
