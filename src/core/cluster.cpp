#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/staging.hpp"
#include "sim/parallel.hpp"

namespace rattrap::core {

Cluster::Cluster(PlatformConfig config, std::size_t servers,
                 qos::PlacementPolicy placement)
    : placement_(placement),
      placer_(servers, config.seed),
      static_counts_(servers, 0) {
  assert(servers > 0);
  servers_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    PlatformConfig per_server = config;
    per_server.seed = config.seed + 7919 * (i + 1);
    per_server.shard_index = static_cast<std::int32_t>(i);
    servers_.push_back(std::make_unique<Platform>(per_server));
  }
  stats_.servers = servers;
}

double Cluster::probe(std::size_t shard) {
  // Live load signal: sessions waiting at the admission front door, jobs
  // occupying the compute plane, and a quarter-weight per live
  // environment (a standing memory commitment, cheaper than an active
  // job).  The Monitor invalidates its live-environment count on every
  // teardown path — idle reclaim, drain completion, crash — so this
  // signal cannot go stale across a reclaim and keep routing work to a
  // shard whose warm capacity is gone.  Everything reads 0 on an idle
  // server, so the placer's own in-pass routing counts break first-wave
  // ties.
  Platform& platform = *servers_[shard];
  return static_cast<double>(platform.accept_queue_depth()) +
         static_cast<double>(platform.server().monitor().running_jobs()) +
         0.25 * static_cast<double>(
                    platform.server().monitor().active_envs());
}

void Cluster::rebalance_warm_capacity() {
  const std::size_t n = servers_.size();
  if (n < 2) return;
  if (servers_.front()->config().elastic.mode ==
      elastic::PoolMode::kDisabled) {
    return;
  }
  std::vector<std::uint32_t> warm(n, 0);
  std::vector<double> score(n, 0.0);
  std::uint32_t total_warm = 0;
  double total_score = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    warm[s] = servers_[s]->warm_idle_count();
    total_warm += warm[s];
    score[s] = probe(s) + static_cast<double>(devices_on_shard(s));
    total_score += score[s];
  }
  if (total_warm == 0 || total_score <= 0.0) return;
  // Largest-remainder apportionment of the fleet's warm capacity by
  // load score; ties break by shard index so the pass is deterministic.
  std::vector<std::uint32_t> desired(n, 0);
  std::vector<std::pair<double, std::size_t>> remainder;
  remainder.reserve(n);
  std::uint32_t apportioned = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const double raw =
        static_cast<double>(total_warm) * score[s] / total_score;
    desired[s] = static_cast<std::uint32_t>(raw);
    apportioned += desired[s];
    remainder.emplace_back(raw - static_cast<double>(desired[s]), s);
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; apportioned < total_warm && i < remainder.size();
       ++i, ++apportioned) {
    ++desired[remainder[i].second];
  }
  // Retire surplus on cold shards first (frees fleet memory), then
  // prewarm the deficit on hot ones.
  for (std::size_t s = 0; s < n; ++s) {
    if (warm[s] > desired[s]) {
      stats_.rebalance_retired +=
          servers_[s]->elastic_retire_warm(warm[s] - desired[s]);
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (warm[s] < desired[s]) {
      stats_.rebalance_prewarmed +=
          servers_[s]->elastic_prewarm(desired[s] - warm[s]);
    }
  }
}

std::size_t Cluster::shard_for_device(std::uint32_t device_id) const {
  if (placement_ == qos::PlacementPolicy::kStatic) {
    return device_id % servers_.size();
  }
  if (const auto shard = placer_.shard_of(device_id)) return *shard;
  // Unplaced device: the decision is made (and remembered) on its first
  // routed request, so predicting it here would desync the candidate
  // stream.  Report the static fallback.
  return device_id % servers_.size();
}

std::size_t Cluster::devices_on_shard(std::size_t shard) const {
  return placement_ == qos::PlacementPolicy::kStatic
             ? static_counts_.at(shard)
             : placer_.assigned(shard);
}

std::vector<RequestOutcome> Cluster::run(
    const std::vector<workloads::OffloadRequest>& stream) {
  const std::size_t n = servers_.size();
  // Move warm capacity to where the load is before routing this wave —
  // a serial pre-pass, like routing itself, so the parallel per-shard
  // simulations below stay independent and deterministic.
  rebalance_warm_capacity();
  // Route each request to the server owning its device — statically or
  // by sticky power-of-two-choices over the live load probe — and
  // renumber sequences per shard so each platform sees a dense stream.
  // Devices keep their original ids: each server simply serves a sparse
  // subset of the device population.
  std::vector<std::vector<workloads::OffloadRequest>> shards(n);
  std::vector<std::vector<std::uint64_t>> original_sequence(n);
  for (const auto& request : stream) {
    std::size_t shard;
    if (placement_ == qos::PlacementPolicy::kStatic) {
      shard = request.device_id % n;
      if (static_seen_.insert(request.device_id).second) {
        ++static_counts_[shard];
      }
    } else {
      shard = placer_.place(request.device_id,
                            [this](std::size_t s) { return probe(s); });
    }
    workloads::OffloadRequest local = request;
    local.sequence = shards[shard].size();
    shards[shard].push_back(local);
    original_sequence[shard].push_back(request.sequence);
  }

  // Servers never interact, so their simulations fan out across hardware
  // threads (kernel executions share the thread-safe process-wide memo).
  // Each shard writes a disjoint set of `merged` slots, and the merge is
  // order-independent — the result is bit-identical to the serial loop.
  std::vector<RequestOutcome> merged(stream.size());
  // Fleet metrics are staged per shard inside the parallel region (each
  // stage is thread-private) and flushed serially, in shard order, after
  // the barrier — the registry never depends on thread interleaving.
  std::vector<obs::MetricsStage> stages(n);
  sim::parallel_for(n, [&](std::size_t shard) {
    if (shards[shard].empty()) return;
    auto outcomes = servers_[shard]->run(shards[shard]);
    obs::MetricsStage& stage = stages[shard];
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      RequestOutcome outcome = std::move(outcomes[i]);
      if (outcome.rejected) {
        stage.counter_add("fleet.requests.rejected");
      } else if (outcome.offloading_failure()) {
        stage.counter_add("fleet.requests.failed");
      } else {
        stage.counter_add("fleet.requests.completed");
        stage.histogram_observe("fleet.response_ms",
                                sim::to_millis(outcome.response));
      }
      stage.counter_add("fleet.bytes.up", outcome.traffic.total_up());
      stage.counter_add("fleet.bytes.down", outcome.traffic.total_down());
      // Restore the caller-visible sequence.
      const std::uint64_t original = original_sequence[shard][i];
      outcome.request.sequence = original;
      merged[original] = std::move(outcome);
    }
    stage.gauge_set("fleet.shard" + std::to_string(shard) + ".environments",
                    static_cast<double>(servers_[shard]->env_count()));
  });
  for (obs::MetricsStage& stage : stages) {
    stage.flush_into(metrics_);
  }

  stats_.environments = 0;
  for (const auto& server : servers_) {
    stats_.environments += server->env_count();
  }
  for (const auto& outcome : merged) {
    stats_.total_up_bytes += outcome.traffic.total_up();
    stats_.total_down_bytes += outcome.traffic.total_down();
    if (outcome.rejected) {
      ++stats_.rejected;
    } else if (outcome.offloading_failure()) {
      ++stats_.failures;
    }
  }
  return merged;
}

}  // namespace rattrap::core
