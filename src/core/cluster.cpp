#include "core/cluster.hpp"

#include <cassert>

#include "sim/parallel.hpp"

namespace rattrap::core {

Cluster::Cluster(PlatformConfig config, std::size_t servers,
                 qos::PlacementPolicy placement)
    : placement_(placement),
      placer_(servers, config.seed),
      static_counts_(servers, 0) {
  assert(servers > 0);
  servers_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    PlatformConfig per_server = config;
    per_server.seed = config.seed + 7919 * (i + 1);
    per_server.shard_index = static_cast<std::int32_t>(i);
    servers_.push_back(std::make_unique<Platform>(per_server));
  }
  stats_.servers = servers;
}

double Cluster::probe(std::size_t shard) {
  // Live load signal: sessions waiting at the admission front door plus
  // jobs occupying the compute plane.  Both read 0 on an idle server, so
  // the placer's own in-pass routing counts break first-wave ties.
  Platform& platform = *servers_[shard];
  return static_cast<double>(platform.accept_queue_depth()) +
         static_cast<double>(platform.server().monitor().running_jobs());
}

std::size_t Cluster::shard_for_device(std::uint32_t device_id) const {
  if (placement_ == qos::PlacementPolicy::kStatic) {
    return device_id % servers_.size();
  }
  if (const auto shard = placer_.shard_of(device_id)) return *shard;
  // Unplaced device: the decision is made (and remembered) on its first
  // routed request, so predicting it here would desync the candidate
  // stream.  Report the static fallback.
  return device_id % servers_.size();
}

std::size_t Cluster::devices_on_shard(std::size_t shard) const {
  return placement_ == qos::PlacementPolicy::kStatic
             ? static_counts_.at(shard)
             : placer_.assigned(shard);
}

std::vector<RequestOutcome> Cluster::run(
    const std::vector<workloads::OffloadRequest>& stream) {
  const std::size_t n = servers_.size();
  // Route each request to the server owning its device — statically or
  // by sticky power-of-two-choices over the live load probe — and
  // renumber sequences per shard so each platform sees a dense stream.
  // Devices keep their original ids: each server simply serves a sparse
  // subset of the device population.
  std::vector<std::vector<workloads::OffloadRequest>> shards(n);
  std::vector<std::vector<std::uint64_t>> original_sequence(n);
  for (const auto& request : stream) {
    std::size_t shard;
    if (placement_ == qos::PlacementPolicy::kStatic) {
      shard = request.device_id % n;
      if (static_seen_.insert(request.device_id).second) {
        ++static_counts_[shard];
      }
    } else {
      shard = placer_.place(request.device_id,
                            [this](std::size_t s) { return probe(s); });
    }
    workloads::OffloadRequest local = request;
    local.sequence = shards[shard].size();
    shards[shard].push_back(local);
    original_sequence[shard].push_back(request.sequence);
  }

  // Servers never interact, so their simulations fan out across hardware
  // threads (kernel executions share the thread-safe process-wide memo).
  // Each shard writes a disjoint set of `merged` slots, and the merge is
  // order-independent — the result is bit-identical to the serial loop.
  std::vector<RequestOutcome> merged(stream.size());
  sim::parallel_for(n, [&](std::size_t shard) {
    if (shards[shard].empty()) return;
    auto outcomes = servers_[shard]->run(shards[shard]);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      RequestOutcome outcome = std::move(outcomes[i]);
      // Restore the caller-visible sequence.
      const std::uint64_t original = original_sequence[shard][i];
      outcome.request.sequence = original;
      merged[original] = std::move(outcome);
    }
  });

  stats_.environments = 0;
  for (const auto& server : servers_) {
    stats_.environments += server->env_count();
  }
  for (const auto& outcome : merged) {
    stats_.total_up_bytes += outcome.traffic.total_up();
    stats_.total_down_bytes += outcome.traffic.total_down();
    if (outcome.rejected) {
      ++stats_.rejected;
    } else if (outcome.offloading_failure()) {
      ++stats_.failures;
    }
  }
  return merged;
}

}  // namespace rattrap::core
