// Multi-server cluster: Rattrap beyond one machine.
//
// The paper's prototype runs on "server machines" (plural, §V) and the
// future work targets public clouds (§VIII).  A cluster front-end shards
// devices across servers — each device's environments live on one server
// (so container affinity and code caches stay local) and servers do not
// interact, which keeps every per-server simulation independent and
// deterministic.  The front-end merges per-server outcomes back into
// stream order and aggregates fleet-level statistics.
//
// Device→server placement is admission-aware by default: a new device is
// routed by power-of-two-choices over each candidate server's live load
// (admission-queue depth + Monitor utilization, qos/placement.hpp), and
// the choice is sticky for the device's lifetime.  kStatic restores the
// pre-QoS `device_id % servers` sharding.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "core/platform.hpp"
#include "core/qos/placement.hpp"
#include "obs/metrics.hpp"

namespace rattrap::core {

struct ClusterStats {
  std::size_t servers = 0;
  std::size_t environments = 0;   ///< across all servers
  std::uint64_t total_up_bytes = 0;
  std::uint64_t total_down_bytes = 0;
  std::size_t failures = 0;
  std::size_t rejected = 0;
  /// Warm capacity moved by the cross-shard rebalancer (docs/ELASTIC.md):
  /// environments booted on hot shards / drained on cold ones.
  std::uint64_t rebalance_prewarmed = 0;
  std::uint64_t rebalance_retired = 0;
};

class Cluster {
 public:
  /// `servers` identical machines running `config`. Each server's
  /// platform gets a distinct seed derived from config.seed.
  Cluster(PlatformConfig config, std::size_t servers,
          qos::PlacementPolicy placement = qos::PlacementPolicy::kPowerOfTwo);

  /// Replays a stream across the cluster: requests are routed to the
  /// server owning their device.  Outcomes come back indexed by the
  /// original sequence.
  std::vector<RequestOutcome> run(
      const std::vector<workloads::OffloadRequest>& stream);

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] Platform& server(std::size_t index) {
    return *servers_.at(index);
  }
  [[nodiscard]] qos::PlacementPolicy placement() const { return placement_; }

  /// The server a device is (or would be, for an unseen device under
  /// kStatic) routed to.
  [[nodiscard]] std::size_t shard_for_device(std::uint32_t device_id) const;

  /// Devices currently routed to `shard` (placement decisions so far).
  [[nodiscard]] std::size_t devices_on_shard(std::size_t shard) const;

  /// Fleet statistics over everything run so far.
  [[nodiscard]] const ClusterStats& stats() const { return stats_; }

  /// Fleet-level metrics (fleet.*): aggregated from per-shard staging
  /// buffers flushed in shard order at the end of each run() — the
  /// registry contents are independent of thread scheduling, so its
  /// to_json() is a determinism fingerprint for the whole cluster run
  /// (docs/PERF.md).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  /// Live load score for a shard: admission queue depth plus running
  /// jobs (Monitor utilization × cores) plus a fraction of the live
  /// environment count.  Higher is busier.
  [[nodiscard]] double probe(std::size_t shard);

  /// Serial pre-pass before routing: re-apportions the fleet's warm-idle
  /// capacity across shards by load score (largest-remainder method),
  /// draining surplus on cold shards and prewarming hot ones.  No-op
  /// unless every server runs the elastic pool (docs/ELASTIC.md).
  void rebalance_warm_capacity();

  std::vector<std::unique_ptr<Platform>> servers_;
  qos::PlacementPolicy placement_;
  qos::PowerOfTwoPlacer placer_;
  std::vector<std::size_t> static_counts_;  ///< kStatic bookkeeping
  std::set<std::uint32_t> static_seen_;     ///< kStatic: devices routed
  ClusterStats stats_;
  obs::MetricsRegistry metrics_;            ///< fleet.* aggregates
};

}  // namespace rattrap::core
