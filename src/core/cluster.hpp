// Multi-server cluster: Rattrap beyond one machine.
//
// The paper's prototype runs on "server machines" (plural, §V) and the
// future work targets public clouds (§VIII).  A cluster front-end shards
// devices across servers — each device's environments live on one server
// (so container affinity and code caches stay local) and servers do not
// interact, which keeps every per-server simulation independent and
// deterministic.  The front-end merges per-server outcomes back into
// stream order and aggregates fleet-level statistics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/platform.hpp"

namespace rattrap::core {

struct ClusterStats {
  std::size_t servers = 0;
  std::size_t environments = 0;   ///< across all servers
  std::uint64_t total_up_bytes = 0;
  std::uint64_t total_down_bytes = 0;
  std::size_t failures = 0;
  std::size_t rejected = 0;
};

class Cluster {
 public:
  /// `servers` identical machines running `config`. Each server's
  /// platform gets a distinct seed derived from config.seed.
  Cluster(PlatformConfig config, std::size_t servers);

  /// Replays a stream across the cluster: requests are routed to the
  /// server owning their device (device_id % servers). Outcomes come back
  /// indexed by the original sequence.
  std::vector<RequestOutcome> run(
      const std::vector<workloads::OffloadRequest>& stream);

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] Platform& server(std::size_t index) {
    return *servers_.at(index);
  }

  /// Fleet statistics over everything run so far.
  [[nodiscard]] const ClusterStats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<Platform>> servers_;
  ClusterStats stats_;
};

}  // namespace rattrap::core
