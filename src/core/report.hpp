// Platform state reports: a structured snapshot of everything an operator
// would ask the platform ("what's running, what's cached, who's blocked,
// what has the hardware done"), renderable as text or CSV.
#pragma once

#include <cstdint>
#include <string>

#include "core/platform.hpp"

namespace rattrap::core {

struct PlatformReport {
  // Environments.
  std::size_t environments_total = 0;
  std::size_t environments_active = 0;
  std::size_t environments_retired = 0;
  // Warehouse.
  std::size_t cached_apps = 0;
  std::uint64_t cached_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Access controller.
  std::size_t permission_tables = 0;
  // Shared offloading I/O.
  std::uint64_t tmpfs_used_bytes = 0;
  std::uint64_t tmpfs_peak_bytes = 0;
  // Host resources.
  std::uint64_t disk_read_bytes = 0;
  std::uint64_t disk_write_bytes = 0;
  double cpu_busy_seconds = 0;
  std::uint64_t vm_memory_committed = 0;
  std::size_t kernel_modules = 0;
};

/// Snapshots a platform (cheap; read-only).
[[nodiscard]] PlatformReport snapshot(Platform& platform);

/// Human-readable multi-line rendering.
[[nodiscard]] std::string to_text(const PlatformReport& report);

/// Single CSV row (with `csv_header()` as the first line).
[[nodiscard]] std::string csv_header();
[[nodiscard]] std::string to_csv(const PlatformReport& report);

}  // namespace rattrap::core
