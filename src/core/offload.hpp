// Offload session phases and outcomes.
//
// §III-B divides an offloading request into four phases: Network
// Connection, Runtime Preparation, Data Transfer and Computation
// Execution.  Every experiment in the paper reports some projection of
// this breakdown (Fig. 1 stacks it, Fig. 9 averages it, Fig. 10 converts
// it to energy, Fig. 11 to speedup distributions).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "core/qos/qos.hpp"
#include "device/power.hpp"
#include "net/message.hpp"
#include "sim/time.hpp"
#include "workloads/generator.hpp"

namespace rattrap::core {

/// Why a session ended without executing (the typed reject reply).
///
/// The X-macro table is the single source of truth for the enum value,
/// the metrics/CLI string and the RPC wire code (docs/RPC.md), so the
/// codec, the rejected.<reason> labels and to_string() cannot drift:
///   X(enumerator, "string name", wire code)
///
///   kNone                not rejected
///   kAccessDenied        Request-based Access Controller block (§IV-E)
///   kQueueFull           bounded accept queue at capacity
///   kRateLimited         tenant token bucket empty
///   kOverloaded          utilization shed threshold exceeded
///   kCapacity            environment provisioning failed (host full)
///   kConnectFailed       connection-attempt budget exhausted
///   kRedispatchExhausted crashed-environment re-dispatch budget spent
///   kStranded            still in flight when the simulation drained
///   kInvalidConfig       malformed session configuration (open_session)
///   kQuotaExceeded       per-tenant quota (RAC in-flight cap or admission
///                        queue quota) exhausted (docs/RAC.md)
///
/// Wire codes are append-only: never renumber a landed reason — remote
/// peers decode by code, and test_wire pins the table.
#define RATTRAP_REJECT_REASONS(X)     \
  X(kNone, "none", 0)                 \
  X(kAccessDenied, "access_denied", 1)\
  X(kQueueFull, "queue_full", 2)      \
  X(kRateLimited, "rate_limited", 3)  \
  X(kOverloaded, "overloaded", 4)     \
  X(kCapacity, "capacity", 5)         \
  X(kConnectFailed, "connect_failed", 6)            \
  X(kRedispatchExhausted, "redispatch_exhausted", 7)\
  X(kStranded, "stranded", 8)         \
  X(kInvalidConfig, "invalid_config", 9)            \
  X(kQuotaExceeded, "quota_exceeded", 10)

enum class RejectReason : std::uint8_t {
#define RATTRAP_REJECT_ENUMERATOR(name, str, wire) name = (wire),
  RATTRAP_REJECT_REASONS(RATTRAP_REJECT_ENUMERATOR)
#undef RATTRAP_REJECT_ENUMERATOR
};

/// Number of reasons in the table (wire codes are dense from 0).
inline constexpr std::size_t kRejectReasonCount = []() {
  std::size_t n = 0;
#define RATTRAP_REJECT_COUNT(name, str, wire) ++n;
  RATTRAP_REJECT_REASONS(RATTRAP_REJECT_COUNT)
#undef RATTRAP_REJECT_COUNT
  return n;
}();

[[nodiscard]] const char* to_string(RejectReason reason);

/// The stable RPC wire code of `reason` (today the enum value itself, by
/// construction of the X-macro table).
[[nodiscard]] constexpr std::uint8_t wire_code(RejectReason reason) {
  return static_cast<std::uint8_t>(reason);
}

/// Decodes an RPC wire code; nullopt for codes outside the table — the
/// codec turns that into a typed kBadPayload, never an enum out of range.
[[nodiscard]] std::optional<RejectReason> reject_reason_from_wire(
    std::uint8_t code);

/// Expected-style result used across the admission / platform front-door
/// APIs: either a value or a typed RejectReason, never an out-param pair.
/// Implicitly constructible from both sides so `return kQueueFull;` and
/// `return Admitted::kDispatch;` read naturally at call sites.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(RejectReason reason) : reason_(reason) {  // NOLINT(google-explicit-constructor)
    assert(reason != RejectReason::kNone && "errors need a real reason");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// kNone while ok() — callers can always log error().
  [[nodiscard]] RejectReason error() const { return reason_; }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  RejectReason reason_ = RejectReason::kNone;
};

struct PhaseBreakdown {
  sim::SimDuration network_connection = 0;
  sim::SimDuration runtime_preparation = 0;
  sim::SimDuration data_transfer = 0;
  sim::SimDuration computation = 0;

  [[nodiscard]] sim::SimDuration total() const {
    return network_connection + runtime_preparation + data_transfer +
           computation;
  }
};

struct RequestOutcome {
  workloads::OffloadRequest request;
  PhaseBreakdown phases;
  sim::SimTime completed_at = 0;
  /// Offloading response time (arrival → result delivered).
  sim::SimDuration response = 0;
  /// What executing this task locally would have cost the device.
  sim::SimDuration local_time = 0;
  /// local_time / response; < 1 is an offloading failure (§III-B).
  double speedup = 0.0;
  double offload_energy_mj = 0.0;
  double local_energy_mj = 0.0;
  /// Up/down transfer durations (for the energy model).
  sim::SimDuration upload_time = 0;
  sim::SimDuration download_time = 0;
  net::TrafficAccount traffic;
  std::uint32_t env_id = 0;
  bool code_cache_hit = false;
  /// The Request-based Access Controller refused this request (its app
  /// accumulated too many permission violations and is blocked, §IV-E).
  /// Under fault injection, also requests rejected after exhausting
  /// their retry budgets (connection drops, crashed environments); under
  /// admission control, shed load.
  bool rejected = false;
  /// Why the session was rejected (kNone while rejected == false); the
  /// code the typed reject reply carries back to the device.
  RejectReason reject_reason = RejectReason::kNone;
  /// Time spent waiting in the bounded accept queue before dispatch
  /// (admission control; contained in runtime_preparation).
  sim::SimDuration queue_wait = 0;

  // -- QoS identity (docs/QOS.md) --------------------------------------

  /// Tenant the session ran under (SessionConfig::tenant, or the app id
  /// when the session did not name one).
  std::string tenant;
  /// Priority class the session was scheduled in.
  qos::PriorityClass qos_class = qos::PriorityClass::kStandard;
  /// The session carried a deadline and the response overshot it.
  bool deadline_missed = false;

  // -- Fault-injection bookkeeping -------------------------------------

  /// Times the Dispatcher assigned this request to an environment; > 1
  /// means the first environment(s) died and the session was recovered.
  std::uint32_t dispatch_attempts = 0;
  /// Connection-establishment attempts (> 1 under injected drops).
  std::uint32_t connect_attempts = 0;
  /// Completed only after surviving at least one environment crash.
  bool recovered = false;
  /// Still in flight when the simulation drained (recovery disabled or
  /// exhausted); counted as rejected.
  bool stranded = false;

  // -- Mobility bookkeeping (docs/LOADGEN.md) ---------------------------

  /// Radio the device was on when the outcome was recorded ("LAN",
  /// "WAN", "3G", "4G") — how per-radio cost-model effects are split in
  /// load summaries under mid-run handoffs.
  std::string radio;
  /// The session was interrupted by a connectivity outage (handoff
  /// disconnect) and resumed after the radio re-attached.
  bool resumed = false;

  [[nodiscard]] bool offloading_failure() const { return speedup < 1.0; }
};

/// Device-side energy of one offloading episode: idle-waiting through
/// connection/preparation/computation, transmitting during uploads,
/// receiving during downloads, plus radio tails after each transfer burst
/// (the post-upload tail is clipped by the compute phase when computation
/// finishes within the tail window).
[[nodiscard]] double offload_energy_mj(const PhaseBreakdown& phases,
                                       sim::SimDuration upload_time,
                                       sim::SimDuration download_time,
                                       const device::RadioProfile& radio);

}  // namespace rattrap::core
