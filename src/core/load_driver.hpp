// Cluster-scale load driver: adapts the sim-layer arrival engine
// (sim/loadgen.hpp) into offloading requests against a core::Platform.
//
// Every run drives the platform through the Session API: one session per
// traffic-mix entry (or a single default standard-class session), each
// carrying its tenant / priority class / DRR weight.  Open-loop runs
// (Poisson / MMPP) submit the whole arrival schedule up front; closed-loop
// runs install a completion observer that draws the device's next think
// time — stretched by the platform's admission backpressure signal — and
// submits the follow-up request onto the same event queue, so the feedback
// loop is exactly as deterministic as a replayed stream (docs/LOADGEN.md,
// docs/QOS.md).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/qos/qos.hpp"
#include "sim/loadgen.hpp"
#include "workloads/generator.hpp"

namespace rattrap::core {

struct LoadDriverConfig {
  sim::LoadGenConfig loadgen;

  /// Workload every synthetic request runs.
  workloads::Kind kind = workloads::Kind::kLinpack;

  /// Input scale; 0 uses the paper-calibrated default for `kind`.
  std::uint32_t size_class = 0;

  /// Distinct task instances cycled across requests.  Tasks are executed
  /// for real to obtain work units, so a 10^5-request run must reuse a
  /// small variant pool (the process-wide memo makes repeats free).
  std::uint32_t task_variants = 8;
};

/// Per-radio slice of a LoadSummary: completed requests split by the
/// radio ("LAN", "3G", ...) the device was on at completion — how the
/// mobility-handoff experiments show the paper's per-radio cost models
/// (§VI-A links, PowerTutor radio profiles) acting on each phase.
struct RadioLoadStats {
  std::size_t completed = 0;
  double mean_transfer_ms = 0;   ///< data_transfer phase (up + down)
  double mean_response_ms = 0;
  double mean_energy_mj = 0;     ///< device-side offload episode energy
};

/// Per-priority-class slice of a LoadSummary (docs/QOS.md).
struct ClassLoadStats {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t deadline_missed = 0;

  // Response-time distribution of this class's *completed* requests (ms).
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

/// Per-tenant slice of a LoadSummary (docs/RAC.md): the attack-scenario
/// experiments compare a victim tenant's tail latency under attack
/// against its unattacked baseline, and the property battery checks the
/// accounting identity per tenant.
struct TenantLoadStats {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;

  // Response-time distribution of this tenant's *completed* requests (ms).
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

/// What one load-generation run produced, reduced to the numbers the
/// saturation bench sweeps (goodput curve, tail latency, shed classes).
struct LoadSummary {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;   ///< all reject classes, stranded included
  std::size_t stranded = 0;
  std::map<RejectReason, std::size_t> rejects_by_reason;

  double duration_s = 0;          ///< virtual span, first arrival → drain
  double offered_rate_per_s = 0;  ///< offered / duration
  double goodput_per_s = 0;       ///< completed / duration

  // Response-time distribution of *completed* requests (ms).
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;

  /// Mean accept-queue wait across completed requests (ms).
  double mean_queue_wait_ms = 0;

  /// Per-priority-class breakdown, indexed by qos::class_index().
  std::array<ClassLoadStats, qos::kClassCount> by_class;

  /// Completed requests per tenant (the DRR fairness numerator).
  std::map<std::string, std::size_t> completed_by_tenant;

  /// Full per-tenant breakdown (victim-vs-attacker comparisons).
  std::map<std::string, TenantLoadStats> by_tenant;

  /// Completed requests split by the radio at completion (mid-run
  /// handoffs populate several slices; steady links exactly one).
  std::map<std::string, RadioLoadStats> by_radio;

  /// Sessions interrupted by a handoff outage that resumed and reached a
  /// terminal outcome (completed or rejected) — the session-resumption
  /// numerator the mobility experiments gate on.
  std::size_t resumed = 0;

  [[nodiscard]] const ClassLoadStats& for_class(
      qos::PriorityClass klass) const {
    return by_class[qos::class_index(klass)];
  }

  /// Rejects with the given reason (0 when the reason never fired).
  [[nodiscard]] std::size_t rejected_for(RejectReason reason) const {
    const auto it = rejects_by_reason.find(reason);
    return it == rejects_by_reason.end() ? 0 : it->second;
  }
};

/// Transport seam of the load driver (docs/RPC.md): the same open-loop
/// workload drives the Session API either in-process against a Platform
/// (the deterministic sim-clock twin) or across real sockets through
/// rpc::ClientTransport.  A stream id returned by open_session() keys
/// submit()/close(); ids are transport-scoped and never reused within a
/// run.
class SessionTransport {
 public:
  virtual ~SessionTransport() = default;

  /// Opens one session carrying `config`; the typed reject mirrors
  /// Platform::open_session (kInvalidConfig, RAC denials, ...).
  virtual Result<std::uint64_t> open_session(const SessionConfig& config) = 0;

  /// Schedules one request on stream `id`.  Fire-and-forget: terminal
  /// status for every submitted sequence arrives with close().
  virtual void submit(std::uint64_t id,
                      const workloads::OffloadRequest& request) = 0;

  /// Drains the run and returns this stream's outcomes in submission
  /// order (the first close drains the shared event queue, like
  /// Session::close()).
  virtual std::vector<RequestOutcome> close(std::uint64_t id) = 0;
};

/// SessionTransport over an in-process Platform: a thin adapter around
/// Session handles making exactly the open/submit/close call sequence
/// the pre-transport driver made — the sim path stays byte-identical.
class LocalSessionTransport final : public SessionTransport {
 public:
  explicit LocalSessionTransport(Platform& platform) : platform_(platform) {}

  Result<std::uint64_t> open_session(const SessionConfig& config) override;
  void submit(std::uint64_t id,
              const workloads::OffloadRequest& request) override;
  std::vector<RequestOutcome> close(std::uint64_t id) override;

 private:
  Platform& platform_;
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_id_ = 1;
};

/// SessionConfig of traffic-mix slot `slot` (a single default
/// standard-class session when the mix is empty), adversary shaping
/// applied (docs/RAC.md).  Shared by the local and RPC drivers so both
/// transports open identical sessions.
[[nodiscard]] SessionConfig mix_session_config(
    const sim::LoadGenConfig& loadgen, std::size_t slot);

/// Materialized open-loop request stream for `config` (also the seed wave
/// of a closed-loop run).  Deterministic in the config; tasks cycle
/// through the variant pool.
[[nodiscard]] std::vector<workloads::OffloadRequest> make_load_stream(
    const LoadDriverConfig& config);

/// Drives `platform` with the configured load to completion and reduces
/// the outcomes.  Opens one Session per traffic-mix entry (or a single
/// default session when the mix is empty) so every request carries its
/// tenant / class / weight through admission.  Dispatches on
/// config.loadgen.arrival: open-loop models submit a materialized
/// schedule; kClosedLoop closes the loop through a completion observer
/// (installed for the duration of the call).
LoadSummary run_load(Platform& platform, const LoadDriverConfig& config);

/// Open-loop load over any transport: opens one stream per mix entry,
/// submits the materialized schedule in arrival order, closes every
/// stream and reduces the merged outcomes.  Closed-loop arrivals need
/// the in-process completion observer and are not expressible over a
/// transport — run_load() handles those.  An open_session reject aborts
/// the run (empty summary).
LoadSummary run_load_transport(SessionTransport& transport,
                               const LoadDriverConfig& config);

/// Reduces an outcome vector to a LoadSummary (exposed for tests).
[[nodiscard]] LoadSummary summarize_load(
    const std::vector<RequestOutcome>& outcomes);

}  // namespace rattrap::core
