// Cluster-scale load driver: adapts the sim-layer arrival engine
// (sim/loadgen.hpp) into offloading requests against a core::Platform.
//
// Open-loop runs (Poisson / MMPP) materialize the whole arrival schedule
// up front and replay it through Platform::run().  Closed-loop runs use
// the incremental begin_run()/submit()/finish_run() API: a completion
// observer draws the device's next think time — stretched by the
// platform's admission backpressure signal — and submits the follow-up
// request onto the same event queue, so the feedback loop is exactly as
// deterministic as a replayed stream (docs/LOADGEN.md).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/platform.hpp"
#include "sim/loadgen.hpp"
#include "workloads/generator.hpp"

namespace rattrap::core {

struct LoadDriverConfig {
  sim::LoadGenConfig loadgen;

  /// Workload every synthetic request runs.
  workloads::Kind kind = workloads::Kind::kLinpack;

  /// Input scale; 0 uses the paper-calibrated default for `kind`.
  std::uint32_t size_class = 0;

  /// Distinct task instances cycled across requests.  Tasks are executed
  /// for real to obtain work units, so a 10^5-request run must reuse a
  /// small variant pool (the process-wide memo makes repeats free).
  std::uint32_t task_variants = 8;
};

/// What one load-generation run produced, reduced to the numbers the
/// saturation bench sweeps (goodput curve, tail latency, shed classes).
struct LoadSummary {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;   ///< all reject classes, stranded included
  std::size_t stranded = 0;
  std::map<RejectReason, std::size_t> rejects_by_reason;

  double duration_s = 0;          ///< virtual span, first arrival → drain
  double offered_rate_per_s = 0;  ///< offered / duration
  double goodput_per_s = 0;       ///< completed / duration

  // Response-time distribution of *completed* requests (ms).
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;

  /// Mean accept-queue wait across completed requests (ms).
  double mean_queue_wait_ms = 0;
};

/// Materialized open-loop request stream for `config` (also the seed wave
/// of a closed-loop run).  Deterministic in the config; tasks cycle
/// through the variant pool.
[[nodiscard]] std::vector<workloads::OffloadRequest> make_load_stream(
    const LoadDriverConfig& config);

/// Drives `platform` with the configured load to completion and reduces
/// the outcomes.  Dispatches on config.loadgen.arrival: open-loop models
/// replay a materialized schedule; kClosedLoop closes the loop through a
/// completion observer (installed for the duration of the call).
LoadSummary run_load(Platform& platform, const LoadDriverConfig& config);

/// Reduces an outcome vector to a LoadSummary (exposed for tests).
[[nodiscard]] LoadSummary summarize_load(
    const std::vector<RequestOutcome>& outcomes);

}  // namespace rattrap::core
