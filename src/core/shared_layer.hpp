// Shared Resource Layer and Sharing Offloading I/O (§IV-C).
//
// Two kinds of sharing:
//  1. The customized system image is mounted read-only under every Cloud
//     Android Container (union lower layer), eliminating the ~1 GB-per-
//     environment duplication: a single CAC's private delta is ~7 MB.
//  2. Offloading I/O — the files requests transfer — lives in ONE shared
//     in-memory filesystem (tmpfs) instead of each container's top layer
//     (Fig. 7b), so offloaded code reads inputs at memory speed and
//     "burn after reading" keeps the footprint bounded.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "fs/layer.hpp"
#include "fs/tmpfs.hpp"
#include "obs/metrics.hpp"

namespace rattrap::core {

class SharedResourceLayer {
 public:
  SharedResourceLayer(std::shared_ptr<const fs::Layer> system_layer,
                      std::uint64_t tmpfs_capacity, double tmpfs_mb_s);

  /// The read-only system layer all containers union-mount.
  [[nodiscard]] const std::shared_ptr<const fs::Layer>& system_layer()
      const {
    return system_layer_;
  }

  /// Bytes stored once and shared by every container.
  [[nodiscard]] std::uint64_t shared_bytes() const {
    return system_layer_->total_bytes();
  }

  /// The shared offloading-I/O mount.
  [[nodiscard]] fs::TmpFs& offload_io() { return offload_io_; }
  [[nodiscard]] const fs::TmpFs& offload_io() const { return offload_io_; }

  /// Stages one request's transferred files into the shared layer under a
  /// per-request directory; returns false when tmpfs capacity is exceeded.
  bool stage_request_files(std::uint64_t request_seq, std::uint64_t bytes,
                           sim::SimTime now);

  /// Consumes (reads + burns) a request's staged files; returns the bytes
  /// read, or 0 when nothing was staged.
  std::uint64_t consume_request_files(std::uint64_t request_seq,
                                      sim::SimTime now);

  /// Unlinks a request's staged files without reading them — the cleanup
  /// path for sessions that die between staging and execution (crash
  /// recovery must not leak one-shot files). Returns the bytes freed.
  std::uint64_t release_request_files(std::uint64_t request_seq);

  /// In-memory transfer time for `bytes`.
  [[nodiscard]] sim::SimDuration io_time(std::uint64_t bytes) const {
    return offload_io_.transfer_time(bytes);
  }

  /// Staged-but-unconsumed accounting, for the invariant that the shared
  /// tmpfs holds exactly the live offload files and nothing else.
  [[nodiscard]] std::uint64_t staged_bytes() const { return staged_bytes_; }
  [[nodiscard]] std::size_t staged_count() const { return staged_.size(); }

  /// Attaches a metrics registry: staging counts into tmpfs.staged.* and
  /// tmpfs.bytes_shared (total bytes that transited the shared layer),
  /// rejections into tmpfs.stage_rejected, and tmpfs.used_bytes /
  /// tmpfs.peak_bytes track the live footprint. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  [[nodiscard]] static std::string request_path(std::uint64_t request_seq);
  void update_usage_metrics();

  std::shared_ptr<const fs::Layer> system_layer_;
  fs::TmpFs offload_io_;
  std::map<std::uint64_t, std::uint64_t> staged_;  ///< request seq → bytes
  std::uint64_t staged_bytes_ = 0;
  obs::Counter* metric_staged_requests_ = nullptr;
  obs::Counter* metric_bytes_shared_ = nullptr;
  obs::Counter* metric_stage_rejected_ = nullptr;
  obs::Counter* metric_consumed_bytes_ = nullptr;
  obs::Counter* metric_released_bytes_ = nullptr;
  obs::Gauge* metric_used_bytes_ = nullptr;
  obs::Gauge* metric_peak_bytes_ = nullptr;
};

}  // namespace rattrap::core
