// Cloud server: the physical machine hosting a platform instance.
//
// Models one of the paper's evaluation servers (2× six-core Xeon X5650,
// 16 GB DRAM, 300 GB HDD, Ubuntu host) and owns the substrate stack: the
// simulated clock, the host kernel (+ Android Container Driver), the HDD,
// the container runtime, the hypervisor, the monitor and the shared
// platform services.
#pragma once

#include <cstdint>
#include <memory>

#include "container/runtime.hpp"
#include "core/access_control.hpp"
#include "core/calibration.hpp"
#include "core/container_db.hpp"
#include "core/monitor.hpp"
#include "core/shared_layer.hpp"
#include "core/warehouse.hpp"
#include "fs/disk.hpp"
#include "kernel/android_container_driver.hpp"
#include "kernel/kernel.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "vm/hypervisor.hpp"

namespace rattrap::core {

class CloudServer {
 public:
  CloudServer(const Calibration& calibration,
              std::shared_ptr<const fs::Layer> shared_system_layer);

  [[nodiscard]] const Calibration& calibration() const { return cal_; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] fs::DiskModel& disk() { return disk_; }
  [[nodiscard]] kernel::HostKernel& kernel() { return kernel_; }
  [[nodiscard]] kernel::AndroidContainerDriver& driver() { return acd_; }
  [[nodiscard]] container::ContainerRuntime& containers() {
    return containers_;
  }
  [[nodiscard]] vm::Hypervisor& hypervisor() { return hypervisor_; }
  [[nodiscard]] MonitorScheduler& monitor() { return monitor_; }
  [[nodiscard]] SharedResourceLayer& shared_layer() { return shared_; }
  [[nodiscard]] AppWarehouse& warehouse() { return warehouse_; }
  [[nodiscard]] RequestAccessController& access() { return access_; }
  [[nodiscard]] ContainerDb& env_db() { return env_db_; }

  /// Simulated compute duration of `units` work of `kind` on one core at
  /// native speed (platform overheads are applied by the caller).
  [[nodiscard]] sim::SimDuration native_compute_time(
      workloads::Kind kind, std::uint64_t units) const;

  /// Threads one fault injector through every server-side fault point:
  /// the HDD, the shared offload tmpfs, the binder context, the device-
  /// namespace subsystem and the warehouse cache. Pass nullptr to detach.
  void install_fault_injector(sim::FaultInjector* faults);

  /// Threads one metrics registry through every instrumented server
  /// component (monitor, shared layer, warehouse, container DB). Pass
  /// nullptr to detach.
  void install_metrics(obs::MetricsRegistry* metrics);

 private:
  Calibration cal_;
  sim::Simulator sim_;
  fs::DiskModel disk_;
  kernel::HostKernel kernel_;
  kernel::AndroidContainerDriver acd_;
  container::ContainerRuntime containers_;
  vm::Hypervisor hypervisor_;
  MonitorScheduler monitor_;
  SharedResourceLayer shared_;
  AppWarehouse warehouse_;
  RequestAccessController access_;
  ContainerDb env_db_;
};

}  // namespace rattrap::core
