#include "core/load_driver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workloads/workload.hpp"

namespace rattrap::core {

namespace {

std::vector<workloads::TaskSpec> make_variants(
    const LoadDriverConfig& config) {
  const std::uint32_t count = std::max<std::uint32_t>(1, config.task_variants);
  const std::uint32_t size_class =
      config.size_class > 0 ? config.size_class
                            : workloads::default_size_class(config.kind);
  sim::Rng task_rng = sim::Rng(config.loadgen.seed).fork("loadgen-tasks");
  const auto workload = workloads::make_workload(config.kind);
  std::vector<workloads::TaskSpec> variants;
  variants.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    variants.push_back(workload->make_task(task_rng, size_class));
  }
  return variants;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank > 0 ? rank - 1 : 0)];
}

/// One Session per mix entry; a single default standard-class session
/// when no mix is configured (slot 0 then serves every arrival).
std::vector<Session> open_mix_sessions(Platform& platform,
                                       const sim::LoadGenConfig& loadgen) {
  const std::size_t slots = std::max<std::size_t>(1, loadgen.mix.size());
  std::vector<Session> sessions;
  sessions.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    Result<Session> opened =
        platform.open_session(mix_session_config(loadgen, i));
    assert(opened && "load-driver session configs are well-formed");
    sessions.push_back(std::move(*opened));
  }
  return sessions;
}

/// Task-shaping side of an adversary profile: cache-thrash tenants ship
/// inflated one-shot inputs (tmpfs pressure evicting the shared layer),
/// noisy neighbors pad compute-adjacent costs (I/O ops and control
/// rounds serialize with the job and pin the shard).  Pure in the spec;
/// the arrival schedule is untouched.
workloads::TaskSpec shape_task(workloads::TaskSpec spec,
                               sim::AdversaryProfile adversary) {
  switch (adversary) {
    case sim::AdversaryProfile::kCacheThrash:
      spec.input_file_bytes =
          std::max<std::uint64_t>(1, spec.input_file_bytes) * 16;
      spec.io_ops += 8;
      break;
    case sim::AdversaryProfile::kNoisyNeighbor:
      spec.input_file_bytes =
          std::max<std::uint64_t>(1, spec.input_file_bytes) * 4;
      spec.io_ops += 32;
      spec.control_rounds += 4;
      break;
    default:
      break;
  }
  return spec;
}

/// The adversary profile of mix slot `slot` (kNone outside the mix).
sim::AdversaryProfile slot_adversary(const sim::LoadGenConfig& loadgen,
                                     std::size_t slot) {
  return slot < loadgen.mix.size() ? loadgen.mix[slot].adversary
                                   : sim::AdversaryProfile::kNone;
}

/// Merges per-session outcome vectors back into sequence order.
void absorb_outcomes(std::vector<RequestOutcome>& merged,
                     std::vector<RequestOutcome> part) {
  for (RequestOutcome& outcome : part) {
    const std::size_t sequence = outcome.request.sequence;
    if (merged.size() <= sequence) merged.resize(sequence + 1);
    merged[sequence] = std::move(outcome);
  }
}

}  // namespace

SessionConfig mix_session_config(const sim::LoadGenConfig& loadgen,
                                 std::size_t slot) {
  // Adversary profiles shape the slot's SessionConfig (docs/RAC.md):
  // permission probers carry probe_ops, class flooders escalate their
  // whole stream to the interactive lane.
  SessionConfig session_config;
  if (slot < loadgen.mix.size()) {
    const sim::TrafficClassMix& entry = loadgen.mix[slot];
    session_config.tenant = entry.tenant;
    session_config.priority = static_cast<qos::PriorityClass>(
        std::min<std::uint8_t>(entry.priority, qos::kClassCount - 1));
    session_config.tenant_weight = std::max<std::uint32_t>(1, entry.weight);
    switch (entry.adversary) {
      case sim::AdversaryProfile::kPermissionProbe:
        session_config.probe_ops = {Operation::kWriteSharedLayer,
                                    Operation::kReadForeignCode};
        break;
      case sim::AdversaryProfile::kClassFlood:
        session_config.priority = qos::PriorityClass::kInteractive;
        break;
      default:
        break;
    }
  }
  return session_config;
}

Result<std::uint64_t> LocalSessionTransport::open_session(
    const SessionConfig& config) {
  Result<Session> opened = platform_.open_session(config);
  if (!opened) return opened.error();
  const std::uint64_t id = next_id_++;
  sessions_.emplace(id, std::move(*opened));
  return id;
}

void LocalSessionTransport::submit(std::uint64_t id,
                                   const workloads::OffloadRequest& request) {
  const auto it = sessions_.find(id);
  assert(it != sessions_.end() && "submit on an unopened local stream");
  if (it != sessions_.end()) it->second.submit(request);
}

std::vector<RequestOutcome> LocalSessionTransport::close(std::uint64_t id) {
  const auto it = sessions_.find(id);
  assert(it != sessions_.end() && "close on an unopened local stream");
  if (it == sessions_.end()) return {};
  std::vector<RequestOutcome> outcomes = it->second.close();
  sessions_.erase(it);
  return outcomes;
}

std::vector<workloads::OffloadRequest> make_load_stream(
    const LoadDriverConfig& config) {
  const std::vector<sim::Arrival> arrivals =
      sim::make_arrivals(config.loadgen);
  const std::vector<workloads::TaskSpec> variants = make_variants(config);
  std::vector<workloads::OffloadRequest> stream;
  stream.reserve(arrivals.size());
  for (const sim::Arrival& arrival : arrivals) {
    workloads::OffloadRequest request;
    request.sequence = arrival.sequence;
    request.device_id = arrival.device_id;
    request.task = variants[arrival.sequence % variants.size()];
    request.arrival = arrival.at;
    stream.push_back(request);
  }
  return stream;
}

LoadSummary run_load(Platform& platform, const LoadDriverConfig& config) {
  if (config.loadgen.arrival != sim::ArrivalProcess::kClosedLoop) {
    // Open loop: the schedule is materialized up front, which is exactly
    // the transport-shaped workload — drive it through the local adapter
    // so the sim path and the RPC path share one code path (docs/RPC.md).
    LocalSessionTransport transport(platform);
    return run_load_transport(transport, config);
  }

  const std::vector<workloads::TaskSpec> variants = make_variants(config);
  std::vector<Session> sessions = open_mix_sessions(platform, config.loadgen);

  // The closed-loop source must outlive the close() drain below: the
  // completion observer captures it and keeps drawing from it until the
  // run's event queue is empty.
  sim::ClosedLoopSource source(config.loadgen);

  // Closed loop: the seed wave is materialized; every follow-up request
  // is born inside the completion observer, after the issuing device's
  // think time.  Backpressure at completion instant stretches the think
  // draw, which is the graceful-degradation feedback path.  Devices are
  // pinned to one mix slot (mix_for_device), so a device's tenant and
  // class never flap mid-run.
  platform.set_completion_observer([&platform, &source, &variants, &sessions,
                                    &config](const RequestOutcome& done) {
    if (source.exhausted()) return;
    const std::uint64_t sequence = source.take();
    const sim::SimDuration think =
        source.think(done.request.device_id, platform.backpressure());
    const std::uint32_t slot =
        sim::mix_for_device(config.loadgen, done.request.device_id);
    workloads::OffloadRequest next;
    next.sequence = sequence;
    next.device_id = done.request.device_id;
    next.task = shape_task(variants[sequence % variants.size()],
                           slot_adversary(config.loadgen, slot));
    next.arrival = platform.server().simulator().now() + think;
    sessions[slot].submit(next);
  });
  for (const sim::Arrival& arrival : sim::make_arrivals(config.loadgen)) {
    const std::uint64_t sequence = source.take();
    assert(sequence == arrival.sequence);
    workloads::OffloadRequest request;
    request.sequence = sequence;
    request.device_id = arrival.device_id;
    request.task = shape_task(variants[sequence % variants.size()],
                              slot_adversary(config.loadgen, arrival.mix_index));
    request.arrival = arrival.at;
    sessions[arrival.mix_index].submit(request);
  }

  // The first close() drains the whole run (the event queue is shared),
  // so any observer-born follow-ups complete before their session closes.
  std::vector<RequestOutcome> outcomes;
  for (Session& session : sessions) {
    absorb_outcomes(outcomes, session.close());
  }
  platform.set_completion_observer({});
  return summarize_load(outcomes);
}

LoadSummary run_load_transport(SessionTransport& transport,
                               const LoadDriverConfig& config) {
  assert(config.loadgen.arrival != sim::ArrivalProcess::kClosedLoop &&
         "closed-loop feedback needs the in-process observer (run_load)");
  const std::vector<workloads::TaskSpec> variants = make_variants(config);

  const std::size_t slots =
      std::max<std::size_t>(1, config.loadgen.mix.size());
  std::vector<std::uint64_t> streams;
  streams.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    Result<std::uint64_t> opened =
        transport.open_session(mix_session_config(config.loadgen, i));
    if (!opened) {
      // A rejected stream aborts the run: close what opened (draining
      // nothing — no submits yet) and report an empty summary.
      for (const std::uint64_t id : streams) transport.close(id);
      return LoadSummary{};
    }
    streams.push_back(*opened);
  }

  // Submit the whole schedule up front, routed by the per-arrival mix
  // draw — byte-for-byte the submission order of the pre-transport
  // driver.
  for (const sim::Arrival& arrival : sim::make_arrivals(config.loadgen)) {
    workloads::OffloadRequest request;
    request.sequence = arrival.sequence;
    request.device_id = arrival.device_id;
    request.task = shape_task(variants[arrival.sequence % variants.size()],
                              slot_adversary(config.loadgen, arrival.mix_index));
    request.arrival = arrival.at;
    transport.submit(streams[arrival.mix_index], request);
  }

  // The first close() drains the whole run server-side.
  std::vector<RequestOutcome> outcomes;
  for (const std::uint64_t id : streams) {
    absorb_outcomes(outcomes, transport.close(id));
  }
  return summarize_load(outcomes);
}

LoadSummary summarize_load(const std::vector<RequestOutcome>& outcomes) {
  LoadSummary summary;
  summary.offered = outcomes.size();
  std::vector<double> responses_ms;
  responses_ms.reserve(outcomes.size());
  std::array<std::vector<double>, qos::kClassCount> class_responses_ms;
  std::map<std::string, std::vector<double>> tenant_responses_ms;
  double queue_wait_ms = 0;
  sim::SimTime span_end = 0;
  for (const RequestOutcome& outcome : outcomes) {
    span_end = std::max(span_end, outcome.completed_at);
    ClassLoadStats& klass =
        summary.by_class[qos::class_index(outcome.qos_class)];
    ++klass.offered;
    TenantLoadStats& tenant = summary.by_tenant[outcome.tenant];
    ++tenant.offered;
    if (outcome.resumed) ++summary.resumed;
    if (outcome.rejected) {
      ++summary.rejected;
      ++klass.rejected;
      ++tenant.rejected;
      ++summary.rejects_by_reason[outcome.reject_reason];
      if (outcome.stranded) ++summary.stranded;
      continue;
    }
    ++summary.completed;
    ++klass.completed;
    ++tenant.completed;
    if (outcome.deadline_missed) ++klass.deadline_missed;
    ++summary.completed_by_tenant[outcome.tenant];
    if (!outcome.radio.empty()) {
      RadioLoadStats& radio = summary.by_radio[outcome.radio];
      ++radio.completed;
      radio.mean_transfer_ms += sim::to_millis(outcome.phases.data_transfer);
      radio.mean_response_ms += sim::to_millis(outcome.response);
      radio.mean_energy_mj += outcome.offload_energy_mj;
    }
    const double response_ms = sim::to_millis(outcome.response);
    responses_ms.push_back(response_ms);
    class_responses_ms[qos::class_index(outcome.qos_class)].push_back(
        response_ms);
    tenant_responses_ms[outcome.tenant].push_back(response_ms);
    queue_wait_ms += sim::to_millis(outcome.queue_wait);
  }
  summary.duration_s = sim::to_seconds(span_end);
  if (summary.duration_s > 0) {
    summary.offered_rate_per_s =
        static_cast<double>(summary.offered) / summary.duration_s;
    summary.goodput_per_s =
        static_cast<double>(summary.completed) / summary.duration_s;
  }
  if (!responses_ms.empty()) {
    std::sort(responses_ms.begin(), responses_ms.end());
    double sum = 0;
    for (const double r : responses_ms) sum += r;
    summary.mean_ms = sum / static_cast<double>(responses_ms.size());
    summary.p50_ms = percentile(responses_ms, 0.50);
    summary.p95_ms = percentile(responses_ms, 0.95);
    summary.p99_ms = percentile(responses_ms, 0.99);
    summary.mean_queue_wait_ms =
        queue_wait_ms / static_cast<double>(responses_ms.size());
  }
  for (auto& [name, radio] : summary.by_radio) {
    (void)name;
    const double n = std::max<double>(1.0, static_cast<double>(radio.completed));
    radio.mean_transfer_ms /= n;
    radio.mean_response_ms /= n;
    radio.mean_energy_mj /= n;
  }
  for (const qos::PriorityClass klass : qos::kAllClasses) {
    std::vector<double>& sorted =
        class_responses_ms[qos::class_index(klass)];
    if (sorted.empty()) continue;
    std::sort(sorted.begin(), sorted.end());
    ClassLoadStats& stats = summary.by_class[qos::class_index(klass)];
    double sum = 0;
    for (const double r : sorted) sum += r;
    stats.mean_ms = sum / static_cast<double>(sorted.size());
    stats.p50_ms = percentile(sorted, 0.50);
    stats.p95_ms = percentile(sorted, 0.95);
    stats.p99_ms = percentile(sorted, 0.99);
  }
  for (auto& [name, sorted] : tenant_responses_ms) {
    std::sort(sorted.begin(), sorted.end());
    TenantLoadStats& stats = summary.by_tenant[name];
    double sum = 0;
    for (const double r : sorted) sum += r;
    stats.mean_ms = sum / static_cast<double>(sorted.size());
    stats.p50_ms = percentile(sorted, 0.50);
    stats.p99_ms = percentile(sorted, 0.99);
  }
  return summary;
}

}  // namespace rattrap::core
