#include "core/load_driver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workloads/workload.hpp"

namespace rattrap::core {

namespace {

std::vector<workloads::TaskSpec> make_variants(
    const LoadDriverConfig& config) {
  const std::uint32_t count = std::max<std::uint32_t>(1, config.task_variants);
  const std::uint32_t size_class =
      config.size_class > 0 ? config.size_class
                            : workloads::default_size_class(config.kind);
  sim::Rng task_rng = sim::Rng(config.loadgen.seed).fork("loadgen-tasks");
  const auto workload = workloads::make_workload(config.kind);
  std::vector<workloads::TaskSpec> variants;
  variants.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    variants.push_back(workload->make_task(task_rng, size_class));
  }
  return variants;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank > 0 ? rank - 1 : 0)];
}

}  // namespace

std::vector<workloads::OffloadRequest> make_load_stream(
    const LoadDriverConfig& config) {
  const std::vector<sim::Arrival> arrivals =
      sim::make_arrivals(config.loadgen);
  const std::vector<workloads::TaskSpec> variants = make_variants(config);
  std::vector<workloads::OffloadRequest> stream;
  stream.reserve(arrivals.size());
  for (const sim::Arrival& arrival : arrivals) {
    workloads::OffloadRequest request;
    request.sequence = arrival.sequence;
    request.device_id = arrival.device_id;
    request.task = variants[arrival.sequence % variants.size()];
    request.arrival = arrival.at;
    stream.push_back(request);
  }
  return stream;
}

LoadSummary run_load(Platform& platform, const LoadDriverConfig& config) {
  if (config.loadgen.arrival != sim::ArrivalProcess::kClosedLoop) {
    return summarize_load(platform.run(make_load_stream(config)));
  }

  // Closed loop: the seed wave is materialized; every follow-up request
  // is born inside the completion observer, after the issuing device's
  // think time.  Backpressure at completion instant stretches the think
  // draw, which is the graceful-degradation feedback path.
  const std::vector<workloads::TaskSpec> variants = make_variants(config);
  sim::ClosedLoopSource source(config.loadgen);
  platform.begin_run();
  platform.set_completion_observer([&platform, &source,
                                    &variants](const RequestOutcome& done) {
    if (source.exhausted()) return;
    const std::uint64_t sequence = source.take();
    const sim::SimDuration think =
        source.think(done.request.device_id, platform.backpressure());
    workloads::OffloadRequest next;
    next.sequence = sequence;
    next.device_id = done.request.device_id;
    next.task = variants[sequence % variants.size()];
    next.arrival = platform.server().simulator().now() + think;
    platform.submit(next);
  });
  for (const sim::Arrival& arrival : sim::make_arrivals(config.loadgen)) {
    const std::uint64_t sequence = source.take();
    assert(sequence == arrival.sequence);
    workloads::OffloadRequest request;
    request.sequence = sequence;
    request.device_id = arrival.device_id;
    request.task = variants[sequence % variants.size()];
    request.arrival = arrival.at;
    platform.submit(request);
  }
  std::vector<RequestOutcome> outcomes = platform.finish_run();
  platform.set_completion_observer({});
  return summarize_load(outcomes);
}

LoadSummary summarize_load(const std::vector<RequestOutcome>& outcomes) {
  LoadSummary summary;
  summary.offered = outcomes.size();
  std::vector<double> responses_ms;
  responses_ms.reserve(outcomes.size());
  double queue_wait_ms = 0;
  sim::SimTime span_end = 0;
  for (const RequestOutcome& outcome : outcomes) {
    span_end = std::max(span_end, outcome.completed_at);
    if (outcome.rejected) {
      ++summary.rejected;
      ++summary.rejects_by_reason[outcome.reject_reason];
      if (outcome.stranded) ++summary.stranded;
      continue;
    }
    ++summary.completed;
    responses_ms.push_back(sim::to_millis(outcome.response));
    queue_wait_ms += sim::to_millis(outcome.queue_wait);
  }
  summary.duration_s = sim::to_seconds(span_end);
  if (summary.duration_s > 0) {
    summary.offered_rate_per_s =
        static_cast<double>(summary.offered) / summary.duration_s;
    summary.goodput_per_s =
        static_cast<double>(summary.completed) / summary.duration_s;
  }
  if (!responses_ms.empty()) {
    std::sort(responses_ms.begin(), responses_ms.end());
    double sum = 0;
    for (const double r : responses_ms) sum += r;
    summary.mean_ms = sum / static_cast<double>(responses_ms.size());
    summary.p50_ms = percentile(responses_ms, 0.50);
    summary.p95_ms = percentile(responses_ms, 0.95);
    summary.p99_ms = percentile(responses_ms, 0.99);
    summary.mean_queue_wait_ms =
        queue_wait_ms / static_cast<double>(responses_ms.size());
  }
  return summary;
}

}  // namespace rattrap::core
