// QoS vocabulary: priority classes and the scheduling configuration.
//
// The admission front door (core/admission.hpp) protects the server from
// *volume*; this subsystem decides *who gets in first and where*.  Three
// service classes cover the offloading spectrum the related work spans:
//
//   kInteractive — latency-sensitive offloads (UI-blocking OCR, a chess
//                  move the player is waiting on).  Smallest queue, first
//                  pick of every freed dispatch slot.
//   kStandard    — the default; everything the paper's prototype served.
//   kBatch       — throughput clones (CloneCloud-style background scans).
//                  Deep queue, served only when nothing above is waiting
//                  (modulo the anti-starvation promotion budget).
//
// Within a class, tenants share the queue under weighted deficit round
// robin (qos/drr.hpp) so one chatty tenant cannot starve the rest.  The
// whole configuration is deterministic data — no clocks, no randomness —
// which keeps golden-determinism guarantees intact (docs/QOS.md).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace rattrap::core::qos {

enum class PriorityClass : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};

inline constexpr std::size_t kClassCount = 3;

/// All classes, highest priority first (iteration order for schedulers).
inline constexpr std::array<PriorityClass, kClassCount> kAllClasses = {
    PriorityClass::kInteractive, PriorityClass::kStandard,
    PriorityClass::kBatch};

[[nodiscard]] const char* to_string(PriorityClass klass);

/// Parses "interactive" | "standard" | "batch" (metric/CLI spelling).
[[nodiscard]] std::optional<PriorityClass> parse_class(std::string_view name);

[[nodiscard]] constexpr std::size_t class_index(PriorityClass klass) {
  return static_cast<std::size_t>(klass);
}

/// Per-class front-door policy.
struct ClassConfig {
  /// Bounded queue capacity for this class; arrivals beyond it are shed
  /// with kQueueFull.  0 inherits AdmissionConfig::queue_capacity.
  std::uint32_t queue_capacity = 0;

  /// Utilization shed threshold for this class (Monitor running jobs per
  /// core); 0 inherits AdmissionConfig::shed_utilization.  Lower values
  /// shed batch work earlier so interactive arrivals still find room.
  double shed_utilization = 0.0;
};

struct QosConfig {
  /// Master switch.  Disabled preserves the PR-3 front door exactly: one
  /// FIFO accept queue, no class or tenant differentiation (the unified
  /// scheduler degrades to a single-tenant single-lane FIFO).
  bool enabled = false;

  ClassConfig interactive;
  ClassConfig standard;
  ClassConfig batch;

  /// DRR quantum (requests added to a tenant's deficit per round); the
  /// fairness granularity.  Weighted tenants receive quantum × weight.
  std::uint32_t quantum = 1;

  /// Anti-starvation: after `promote_every` consecutive higher-class pops
  /// while lower classes wait, grant the highest waiting lower class a
  /// burst of `starvation_burst` pops.  The qos-priority-burst invariant
  /// bounds observed lower-class runs by this value.
  std::uint32_t starvation_burst = 1;
  std::uint32_t promote_every = 8;

  [[nodiscard]] const ClassConfig& for_class(PriorityClass klass) const {
    switch (klass) {
      case PriorityClass::kInteractive:
        return interactive;
      case PriorityClass::kBatch:
        return batch;
      case PriorityClass::kStandard:
        break;
    }
    return standard;
  }
};

}  // namespace rattrap::core::qos
