#include "core/qos/drr.hpp"

#include <algorithm>
#include <cassert>

namespace rattrap::core::qos {

void DrrScheduler::set_weight(const std::string& tenant,
                              std::uint32_t weight) {
  tenants_[tenant].weight = std::max<std::uint32_t>(1, weight);
}

std::uint32_t DrrScheduler::weight(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.weight : 1;
}

void DrrScheduler::push(const std::string& tenant, std::uint64_t id,
                        sim::SimTime at) {
  Tenant& t = tenants_[tenant];
  t.fifo.push_back(Item{id, at});
  ++size_;
  if (!t.active) {
    t.active = true;
    ring_.push_back(tenant);
  }
}

std::optional<DrrScheduler::Served> DrrScheduler::pop() {
  while (size_ > 0) {
    assert(!ring_.empty());
    const std::string name = ring_.front();
    Tenant& t = tenants_[name];
    if (t.fifo.empty()) {
      // Stale ring slot (remove() emptied the queue); drop it.
      deactivate(name, t);
      continue;
    }
    if (t.deficit == 0) {
      const std::uint64_t grant =
          static_cast<std::uint64_t>(quantum_) * t.weight;
      t.deficit += grant;
      t.granted += grant;
    }
    Served out;
    out.id = t.fifo.front().id;
    out.enqueued_at = t.fifo.front().enqueued_at;
    out.tenant = name;
    t.fifo.pop_front();
    --size_;
    --t.deficit;
    ++t.served;
    out.deficit_after = t.deficit;
    if (t.fifo.empty()) {
      // Going idle forfeits the unspent grant — a returning tenant starts
      // a fresh round instead of cashing saved credit (standard DRR).
      deactivate(name, t);
    } else if (t.deficit == 0) {
      // Quantum spent: rotate to the back of the ring.
      ring_.pop_front();
      ring_.push_back(name);
    }
    return out;
  }
  return std::nullopt;
}

bool DrrScheduler::remove(const std::string& tenant, std::uint64_t id) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  Tenant& t = it->second;
  const auto pos =
      std::find_if(t.fifo.begin(), t.fifo.end(),
                   [id](const Item& item) { return item.id == id; });
  if (pos == t.fifo.end()) return false;
  t.fifo.erase(pos);
  --size_;
  if (t.fifo.empty() && t.active) deactivate(tenant, t);
  return true;
}

void DrrScheduler::clear() {
  for (auto& [name, t] : tenants_) {
    (void)name;
    t.fifo.clear();
    t.forfeited += t.deficit;
    t.deficit = 0;
    t.active = false;
  }
  ring_.clear();
  size_ = 0;
}

std::uint64_t DrrScheduler::deficit(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.deficit : 0;
}

std::uint64_t DrrScheduler::served(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.served : 0;
}

std::size_t DrrScheduler::queued(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.fifo.size() : 0;
}

std::optional<std::string> DrrScheduler::check_conservation() const {
  std::size_t total = 0;
  for (const auto& [name, t] : tenants_) {
    total += t.fifo.size();
    if (t.granted != t.served + t.deficit + t.forfeited) {
      return "tenant " + name + ": granted " + std::to_string(t.granted) +
             " != served " + std::to_string(t.served) + " + deficit " +
             std::to_string(t.deficit) + " + forfeited " +
             std::to_string(t.forfeited);
    }
    const std::uint64_t bound =
        static_cast<std::uint64_t>(quantum_) * t.weight;
    if (t.deficit > bound) {
      return "tenant " + name + ": deficit " + std::to_string(t.deficit) +
             " exceeds quantum*weight " + std::to_string(bound);
    }
    if (!t.active && t.deficit != 0) {
      return "tenant " + name + ": idle with nonzero deficit " +
             std::to_string(t.deficit);
    }
  }
  if (total != size_) {
    return "per-tenant queues hold " + std::to_string(total) +
           " items, ledger says " + std::to_string(size_);
  }
  return std::nullopt;
}

void DrrScheduler::deactivate(const std::string& name, Tenant& tenant) {
  tenant.active = false;
  tenant.forfeited += tenant.deficit;
  tenant.deficit = 0;
  const auto pos = std::find(ring_.begin(), ring_.end(), name);
  if (pos != ring_.end()) ring_.erase(pos);
}

}  // namespace rattrap::core::qos
