#include "core/qos/placement.hpp"

#include <algorithm>
#include <cassert>

namespace rattrap::core::qos {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kStatic:
      return "static";
    case PlacementPolicy::kPowerOfTwo:
      return "p2c";
  }
  return "?";
}

PowerOfTwoPlacer::PowerOfTwoPlacer(std::size_t shards, std::uint64_t seed)
    : shards_(shards),
      rng_(sim::Rng(seed).fork("qos-placement")),
      counts_(shards, 0) {
  assert(shards > 0);
}

std::size_t PowerOfTwoPlacer::place(std::uint32_t device,
                                    const Probe& probe) {
  if (const auto it = sticky_.find(device); it != sticky_.end()) {
    return it->second;
  }
  std::size_t choice = 0;
  if (shards_ > 1) {
    // Two distinct candidates: b is drawn from the range with a removed.
    const auto a = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_) - 1));
    auto b = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_) - 2));
    if (b >= a) ++b;
    const double score_a =
        (probe ? probe(a) : 0.0) + static_cast<double>(counts_[a]);
    const double score_b =
        (probe ? probe(b) : 0.0) + static_cast<double>(counts_[b]);
    // Ties break toward the lower shard index (deterministic).
    choice = score_b < score_a ? b : (score_a < score_b ? a : std::min(a, b));
  }
  sticky_.emplace(device, choice);
  ++counts_[choice];
  return choice;
}

std::optional<std::size_t> PowerOfTwoPlacer::shard_of(
    std::uint32_t device) const {
  const auto it = sticky_.find(device);
  if (it == sticky_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rattrap::core::qos
