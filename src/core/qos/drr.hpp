// Weighted deficit round robin over tenants.
//
// Classic DRR (Shreedhar & Varghese) with unit item cost: each tenant
// keeps a FIFO of queued item ids; an active-tenant ring is visited in
// round-robin order, each visit topping the tenant's deficit up by
// quantum × weight and serving items until the deficit runs dry.  With
// unit costs a tenant with weight w is served w items per round while
// backlogged, so long-run service ratios match weight ratios to within
// one quantum — the property the DRR unit tests pin down.
//
// The scheduler is deterministic (no clocks, no randomness; ring order is
// arrival order of tenant activations) and exposes a conservation ledger:
// for every tenant, deficit granted == items served + current deficit +
// deficit forfeited when its queue emptied.  The qos-drr-conservation
// invariant (core/platform.cpp) evaluates check_conservation() after
// every simulator event.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace rattrap::core::qos {

class DrrScheduler {
 public:
  explicit DrrScheduler(std::uint32_t quantum = 1)
      : quantum_(quantum > 0 ? quantum : 1) {}

  /// One dequeued item (pop() result).
  struct Served {
    std::uint64_t id = 0;
    std::string tenant;
    sim::SimTime enqueued_at = 0;
    /// Tenant deficit remaining after this pop (trace annotation).
    std::uint64_t deficit_after = 0;
  };

  /// Weight applies from the tenant's next deficit top-up; 0 clamps to 1.
  void set_weight(const std::string& tenant, std::uint32_t weight);
  [[nodiscard]] std::uint32_t weight(const std::string& tenant) const;

  void push(const std::string& tenant, std::uint64_t id, sim::SimTime at);

  /// Serves the next item under weighted DRR; nullopt when empty.
  std::optional<Served> pop();

  /// Removes a specific queued item (session finished while waiting).
  /// Returns false when (tenant, id) is not queued.
  bool remove(const std::string& tenant, std::uint64_t id);

  /// Drops every queued item and resets deficits (end-of-run drain).
  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::uint32_t quantum() const { return quantum_; }

  // -- Introspection (tests, invariants, trace annotations) -------------

  [[nodiscard]] std::uint64_t deficit(const std::string& tenant) const;
  [[nodiscard]] std::uint64_t served(const std::string& tenant) const;
  [[nodiscard]] std::size_t queued(const std::string& tenant) const;
  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }

  /// Violation description, or nullopt while the ledger balances:
  /// granted == served + deficit + forfeited for every tenant, deficit
  /// bounded by quantum × weight, and per-tenant queue sizes sum to
  /// size().
  [[nodiscard]] std::optional<std::string> check_conservation() const;

 private:
  struct Item {
    std::uint64_t id = 0;
    sim::SimTime enqueued_at = 0;
  };
  struct Tenant {
    std::deque<Item> fifo;
    std::uint32_t weight = 1;
    bool active = false;        ///< has a ring slot
    std::uint64_t deficit = 0;  ///< unserved grant (unit costs)
    // Conservation ledger.
    std::uint64_t granted = 0;
    std::uint64_t served = 0;
    std::uint64_t forfeited = 0;  ///< deficit dropped on going idle
  };

  void deactivate(const std::string& name, Tenant& tenant);

  std::uint32_t quantum_;
  std::map<std::string, Tenant> tenants_;
  std::deque<std::string> ring_;  ///< active tenants, round-robin order
  std::size_t size_ = 0;
};

}  // namespace rattrap::core::qos
