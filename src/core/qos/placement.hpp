// Admission-aware cluster placement: power-of-two-choices.
//
// The Cluster used to shard devices statically (device_id % servers) —
// blind to what each server is actually carrying.  The placer replaces
// that with the classic power-of-two-choices rule: for each new device,
// sample two distinct candidate shards from a seeded stream and send the
// device to the one with the lower load score.  The score combines a
// live probe (admission-queue depth + Monitor utilization, supplied by
// the Cluster) with the placer's own count of devices already routed this
// pass, so balance holds even before any live signal exists.
//
// Placement is sticky per device: a device's environments, code cache and
// dispatcher affinity live on one server (the Cluster's shard-locality
// contract), so the first placement decision is remembered for the
// device's lifetime.  Determinism: the candidate stream is a pure
// function of the seed and the order of first sightings, which is the
// stream order — same seed + same stream ⇒ identical placements.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "sim/random.hpp"

namespace rattrap::core::qos {

enum class PlacementPolicy : std::uint8_t {
  kStatic = 0,      ///< device_id % servers (the pre-QoS behaviour)
  kPowerOfTwo = 1,  ///< two seeded candidates, lower probe score wins
};

[[nodiscard]] const char* to_string(PlacementPolicy policy);

class PowerOfTwoPlacer {
 public:
  PowerOfTwoPlacer(std::size_t shards, std::uint64_t seed);

  /// Probe callback: the caller's live load score for a shard (higher is
  /// busier).  The placer adds its own routed-device count on top.
  using Probe = std::function<double(std::size_t shard)>;

  /// Shard for `device`: the remembered one, or a fresh power-of-two
  /// choice for a first sighting.
  std::size_t place(std::uint32_t device, const Probe& probe);

  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  [[nodiscard]] std::size_t placed_devices() const { return sticky_.size(); }
  /// Devices routed to `shard` so far.
  [[nodiscard]] std::size_t assigned(std::size_t shard) const {
    return counts_.at(shard);
  }
  /// The remembered shard for `device`, or nullopt before first sighting.
  [[nodiscard]] std::optional<std::size_t> shard_of(
      std::uint32_t device) const;

 private:
  std::size_t shards_;
  sim::Rng rng_;
  std::map<std::uint32_t, std::size_t> sticky_;
  std::vector<std::size_t> counts_;
};

}  // namespace rattrap::core::qos
