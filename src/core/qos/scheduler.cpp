#include "core/qos/scheduler.hpp"

#include <algorithm>

namespace rattrap::core::qos {

namespace {
/// Single pseudo-tenant for the legacy (QoS-disabled) FIFO lane: one
/// tenant under DRR is served in strict arrival order.
const std::string kFifoTenant;
}  // namespace

QosScheduler::QosScheduler(const QosConfig& config,
                           std::uint32_t fifo_capacity)
    : config_(config) {
  for (const PriorityClass klass : kAllClasses) {
    Lane& lane = lanes_[class_index(klass)];
    lane.drr = DrrScheduler(config_.quantum);
    const std::uint32_t configured =
        config_.for_class(klass).queue_capacity;
    lane.capacity =
        (config_.enabled && configured > 0) ? configured : fifo_capacity;
  }
}

std::pair<PriorityClass, std::string> QosScheduler::lane_key(
    PriorityClass klass, const std::string& tenant) const {
  if (!config_.enabled) return {PriorityClass::kStandard, kFifoTenant};
  return {klass, tenant};
}

Result<std::uint32_t> QosScheduler::push(PriorityClass klass,
                                         const std::string& tenant,
                                         std::uint64_t id,
                                         sim::SimTime now) {
  const auto [lane_class, lane_tenant] = lane_key(klass, tenant);
  Lane& lane = lanes_[class_index(lane_class)];
  if (lane.drr.size() >= lane.capacity) {
    if (lane.shed_queue_full != nullptr) lane.shed_queue_full->inc();
    return RejectReason::kQueueFull;
  }
  lane.drr.push(lane_tenant, id, now);
  if (lane.enqueued != nullptr) lane.enqueued->inc();
  update_depth_gauge(lane);
  return static_cast<std::uint32_t>(lane.drr.size());
}

std::optional<QosScheduler::Popped> QosScheduler::pop(sim::SimTime now) {
  // Highest non-empty lane (strict priority default).
  std::size_t highest = kClassCount;
  for (std::size_t i = 0; i < kClassCount; ++i) {
    if (!lanes_[i].drr.empty()) {
      highest = i;
      break;
    }
  }
  if (highest == kClassCount) return std::nullopt;

  // First non-empty lane strictly below it (the starvation candidate).
  std::size_t lower = kClassCount;
  for (std::size_t i = highest + 1; i < kClassCount; ++i) {
    if (!lanes_[i].drr.empty()) {
      lower = i;
      break;
    }
  }

  std::size_t serve = highest;
  bool promoted = false;
  if (config_.enabled && lower != kClassCount &&
      config_.starvation_burst > 0) {
    if (promote_credit_ == 0 && higher_streak_ >= config_.promote_every) {
      promote_credit_ = config_.starvation_burst;
      higher_streak_ = 0;
    }
    if (promote_credit_ > 0) {
      serve = lower;
      --promote_credit_;
      promoted = true;
    }
  }
  if (lower == kClassCount) {
    // Nothing waiting below: no starvation pressure to track.
    higher_streak_ = 0;
    promote_credit_ = 0;
  }

  Lane& lane = lanes_[serve];
  const std::optional<DrrScheduler::Served> served = lane.drr.pop();
  if (!served) return std::nullopt;  // unreachable: lane was non-empty

  if (promoted) {
    ++promotions_;
    ++lower_run_;
    max_lower_run_ = std::max(max_lower_run_, lower_run_);
    if (metric_promotions_ != nullptr) metric_promotions_->inc();
    if (metric_lower_run_peak_ != nullptr) {
      metric_lower_run_peak_->set(static_cast<double>(max_lower_run_));
    }
  } else {
    lower_run_ = 0;
    if (lower != kClassCount) ++higher_streak_;
  }

  Popped out;
  out.id = served->id;
  out.klass = static_cast<PriorityClass>(serve);
  out.tenant = served->tenant;
  out.waited = now - served->enqueued_at;
  out.deficit_after = served->deficit_after;
  if (lane.dequeued != nullptr) lane.dequeued->inc();
  if (lane.wait_ms != nullptr) lane.wait_ms->observe(sim::to_millis(out.waited));
  update_depth_gauge(lane);
  return out;
}

bool QosScheduler::remove(PriorityClass klass, const std::string& tenant,
                          std::uint64_t id) {
  const auto [lane_class, lane_tenant] = lane_key(klass, tenant);
  Lane& lane = lanes_[class_index(lane_class)];
  if (!lane.drr.remove(lane_tenant, id)) return false;
  update_depth_gauge(lane);
  return true;
}

void QosScheduler::clear() {
  for (Lane& lane : lanes_) {
    lane.drr.clear();
    update_depth_gauge(lane);
  }
  higher_streak_ = 0;
  promote_credit_ = 0;
  lower_run_ = 0;
}

void QosScheduler::set_tenant_weight(const std::string& tenant,
                                     std::uint32_t weight) {
  if (!config_.enabled) return;  // the FIFO pseudo-tenant stays weight 1
  for (Lane& lane : lanes_) lane.drr.set_weight(tenant, weight);
}

std::size_t QosScheduler::depth(PriorityClass klass) const {
  return lanes_[class_index(klass)].drr.size();
}

std::size_t QosScheduler::tenant_depth(const std::string& tenant) const {
  if (!config_.enabled) {
    return lanes_[class_index(PriorityClass::kStandard)].drr.queued(
        kFifoTenant);
  }
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.drr.queued(tenant);
  return total;
}

std::size_t QosScheduler::total_depth() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.drr.size();
  return total;
}

std::uint32_t QosScheduler::capacity(PriorityClass klass) const {
  return lanes_[class_index(klass)].capacity;
}

double QosScheduler::shed_threshold(PriorityClass klass,
                                    double fallback) const {
  if (!config_.enabled) return fallback;
  const double configured = config_.for_class(klass).shed_utilization;
  return configured > 0 ? configured : fallback;
}

std::optional<std::string> QosScheduler::check_conservation() const {
  for (const PriorityClass klass : kAllClasses) {
    if (const auto violation =
            lanes_[class_index(klass)].drr.check_conservation()) {
      return std::string(to_string(klass)) + " lane: " + *violation;
    }
  }
  return std::nullopt;
}

void QosScheduler::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    for (Lane& lane : lanes_) {
      lane.enqueued = lane.dequeued = lane.shed_queue_full = nullptr;
      lane.depth_gauge = lane.depth_peak = nullptr;
      lane.wait_ms = nullptr;
    }
    metric_promotions_ = nullptr;
    metric_lower_run_peak_ = nullptr;
    return;
  }
  for (const PriorityClass klass : kAllClasses) {
    Lane& lane = lanes_[class_index(klass)];
    const std::string suffix = to_string(klass);
    lane.enqueued = &metrics->counter("qos.enqueued." + suffix);
    lane.dequeued = &metrics->counter("qos.dequeued." + suffix);
    lane.shed_queue_full =
        &metrics->counter("qos.shed.queue_full." + suffix);
    lane.depth_gauge = &metrics->gauge("qos.queue.depth." + suffix);
    lane.depth_peak = &metrics->gauge("qos.queue.peak." + suffix);
    lane.wait_ms = &metrics->histogram("qos.queue.wait_ms." + suffix);
  }
  metric_promotions_ = &metrics->counter("qos.promotions");
  metric_lower_run_peak_ = &metrics->gauge("qos.lower_run.peak");
}

void QosScheduler::update_depth_gauge(Lane& lane) {
  if (lane.depth_gauge == nullptr) return;
  const auto depth = static_cast<double>(lane.drr.size());
  lane.depth_gauge->set(depth);
  if (lane.depth_peak != nullptr) {
    lane.depth_peak->set(std::max(lane.depth_peak->value(), depth));
  }
}

}  // namespace rattrap::core::qos
