#include "core/qos/qos.hpp"

namespace rattrap::core::qos {

const char* to_string(PriorityClass klass) {
  switch (klass) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kStandard:
      return "standard";
    case PriorityClass::kBatch:
      return "batch";
  }
  return "?";
}

std::optional<PriorityClass> parse_class(std::string_view name) {
  if (name == "interactive") return PriorityClass::kInteractive;
  if (name == "standard") return PriorityClass::kStandard;
  if (name == "batch") return PriorityClass::kBatch;
  return std::nullopt;
}

}  // namespace rattrap::core::qos
