// QosScheduler: the admission front door's queue, unified.
//
// One scheduler replaces the single FIFO accept queue of PR 3.  It keeps
// three class lanes (interactive / standard / batch), each a bounded
// weighted-DRR queue over tenants (qos/drr.hpp).  Dequeue order is strict
// priority across lanes with a bounded anti-starvation promotion: after
// `promote_every` consecutive higher-class pops while lower classes wait,
// the highest waiting lower class gets a burst of `starvation_burst`
// pops.  The qos-priority-burst invariant asserts the observed run of
// lower-class pops (while a higher lane is non-empty) never exceeds that
// burst.
//
// With QosConfig::enabled == false the scheduler degrades to exactly the
// legacy behaviour: every item lands in the standard lane under a single
// pseudo-tenant, which makes DRR a plain FIFO bounded by the legacy
// AdmissionConfig::queue_capacity.  The platform therefore has one queue
// code path regardless of policy (docs/QOS.md).
//
// The scheduler stores opaque item ids (the platform maps them back to
// sessions); it never touches session state, which keeps it unit-testable
// in isolation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/offload.hpp"
#include "core/qos/drr.hpp"
#include "core/qos/qos.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace rattrap::core::qos {

class QosScheduler {
 public:
  /// `fifo_capacity` bounds every lane whose ClassConfig::queue_capacity
  /// is 0 (and the single legacy lane when QoS is disabled).
  QosScheduler(const QosConfig& config, std::uint32_t fifo_capacity);

  struct Popped {
    std::uint64_t id = 0;
    PriorityClass klass = PriorityClass::kStandard;
    std::string tenant;
    sim::SimDuration waited = 0;
    std::uint64_t deficit_after = 0;  ///< tenant deficit post-pop
  };

  /// Queues one item; the returned value is the class-lane depth after
  /// the push.  kQueueFull when the lane is at capacity.
  Result<std::uint32_t> push(PriorityClass klass, const std::string& tenant,
                             std::uint64_t id, sim::SimTime now);

  /// Dequeues under priority + DRR + anti-starvation; nullopt when empty.
  std::optional<Popped> pop(sim::SimTime now);

  /// Removes a queued item (its session finished while waiting).
  bool remove(PriorityClass klass, const std::string& tenant,
              std::uint64_t id);

  /// Drops everything queued (end-of-run drain).
  void clear();

  /// Tenant weight for DRR; applies from the next deficit top-up.
  void set_tenant_weight(const std::string& tenant, std::uint32_t weight);

  [[nodiscard]] std::size_t depth(PriorityClass klass) const;
  [[nodiscard]] std::size_t total_depth() const;
  /// Items `tenant` has queued across every lane — the admission
  /// controller's per-tenant queue quota reads this (docs/RAC.md).  With
  /// QoS disabled everything shares the FIFO pseudo-tenant, so the value
  /// is the whole queue depth regardless of `tenant`.
  [[nodiscard]] std::size_t tenant_depth(const std::string& tenant) const;
  [[nodiscard]] std::uint32_t capacity(PriorityClass klass) const;
  [[nodiscard]] double shed_threshold(PriorityClass klass,
                                      double fallback) const;
  [[nodiscard]] const QosConfig& config() const { return config_; }

  /// Consecutive lower-class pops while a higher lane was non-empty; the
  /// qos-priority-burst invariant bounds this by starvation_burst.
  [[nodiscard]] std::uint32_t lower_run() const { return lower_run_; }
  [[nodiscard]] std::uint32_t max_lower_run() const { return max_lower_run_; }
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }

  /// DRR conservation across all lanes (qos-drr-conservation invariant).
  [[nodiscard]] std::optional<std::string> check_conservation() const;

  /// Lane DRR introspection (tests).
  [[nodiscard]] const DrrScheduler& lane(PriorityClass klass) const {
    return lanes_[class_index(klass)].drr;
  }

  /// Attaches qos.* instruments; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Lane {
    DrrScheduler drr;
    std::uint32_t capacity = 0;
    obs::Counter* enqueued = nullptr;
    obs::Counter* dequeued = nullptr;
    obs::Counter* shed_queue_full = nullptr;
    obs::Gauge* depth_gauge = nullptr;
    obs::Gauge* depth_peak = nullptr;
    obs::Histogram* wait_ms = nullptr;
  };

  /// Maps (klass, tenant) onto the lane key actually used: the standard
  /// lane under one pseudo-tenant when QoS is disabled.
  [[nodiscard]] std::pair<PriorityClass, std::string> lane_key(
      PriorityClass klass, const std::string& tenant) const;
  void update_depth_gauge(Lane& lane);

  QosConfig config_;
  std::array<Lane, kClassCount> lanes_;
  std::uint32_t higher_streak_ = 0;  ///< higher pops since last promotion
  std::uint32_t promote_credit_ = 0;
  std::uint32_t lower_run_ = 0;
  std::uint32_t max_lower_run_ = 0;
  std::uint64_t promotions_ = 0;
  obs::Counter* metric_promotions_ = nullptr;
  obs::Gauge* metric_lower_run_peak_ = nullptr;
};

}  // namespace rattrap::core::qos
