// Dispatcher: routes offloading requests to runtime environments.
//
// "Dispatcher handles the new arrived offloading requests and allocates
// execution environments for them" (§IV-A), and with the code cache it
// "tends to allocate offloading tasks to the Cloud Android Container
// where requests from the same application have been executed before"
// (§IV-D) — saving the code-loading time.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/container_db.hpp"
#include "core/qos/qos.hpp"
#include "core/warehouse.hpp"
#include "obs/metrics.hpp"
#include "workloads/generator.hpp"

namespace rattrap::core {

class Dispatcher {
 public:
  /// `affinity`: route by application (AID → CID) instead of by device.
  Dispatcher(ContainerDb& db, AppWarehouse& warehouse, bool affinity)
      : db_(db), warehouse_(warehouse), affinity_(affinity) {}

  /// The environment-binding key for a request (per-device on every
  /// platform; affinity rerouting happens in assign()).
  [[nodiscard]] std::string binding_key(
      const workloads::OffloadRequest& request,
      const std::string& app_id) const;

  /// The existing environment this request should run in, or nullptr when
  /// a new one must be provisioned.  With affinity enabled, an environment
  /// that already executed this app's code wins — but only while its
  /// compute backlog stays below `backlog_threshold`; the Monitor &
  /// Scheduler otherwise spreads load across per-device environments
  /// (process-level scheduling, §IV-A).
  [[nodiscard]] EnvRecord* assign(const workloads::OffloadRequest& request,
                                  const std::string& app_id,
                                  sim::SimTime now,
                                  sim::SimDuration backlog_threshold =
                                      sim::from_millis(600),
                                  qos::PriorityClass klass =
                                      qos::PriorityClass::kStandard);

  [[nodiscard]] bool affinity() const { return affinity_; }

  /// Attaches a metrics registry: assigns count into dispatcher.assign.*
  /// and, with affinity enabled, reroute hits/misses maintain
  /// dispatcher.affinity.hit_rate. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  ContainerDb& db_;
  AppWarehouse& warehouse_;
  bool affinity_;
  obs::Counter* assign_total_ = nullptr;
  obs::Counter* assign_new_env_ = nullptr;
  std::array<obs::Counter*, qos::kClassCount> assign_by_class_{};
  obs::Counter* affinity_hits_ = nullptr;
  obs::Counter* affinity_misses_ = nullptr;
  obs::Gauge* affinity_hit_rate_ = nullptr;
};

}  // namespace rattrap::core
