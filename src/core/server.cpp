#include "core/server.hpp"

#include <cassert>

namespace rattrap::core {

CloudServer::CloudServer(const Calibration& calibration,
                         std::shared_ptr<const fs::Layer> shared_system_layer)
    : cal_(calibration),
      disk_(sim_, calibration.disk),
      kernel_(sim_),
      acd_(sim_),
      containers_(kernel_),
      hypervisor_(sim_, disk_, calibration.server_memory),
      monitor_(sim_, calibration.server_cores),
      shared_(std::move(shared_system_layer), calibration.tmpfs_capacity,
              calibration.tmpfs_mb_s),
      warehouse_() {}

void CloudServer::install_metrics(obs::MetricsRegistry* metrics) {
  monitor_.set_metrics(metrics);
  shared_.set_metrics(metrics);
  warehouse_.set_metrics(metrics);
  env_db_.set_metrics(metrics);
  access_.set_metrics(metrics);
}

void CloudServer::install_fault_injector(sim::FaultInjector* faults) {
  disk_.set_fault_injector(faults);
  shared_.offload_io().set_fault_injector(faults);
  acd_.binder().set_fault_injector(faults);
  kernel_.device_namespaces().set_fault_injector(faults);
  warehouse_.set_fault_injector(faults);
}

sim::SimDuration CloudServer::native_compute_time(
    workloads::Kind kind, std::uint64_t units) const {
  const double rate = cal_.server_rates[static_cast<std::size_t>(kind)];
  assert(rate > 0);
  return sim::from_seconds(static_cast<double>(units) / rate);
}

}  // namespace rattrap::core
