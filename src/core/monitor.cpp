#include "core/monitor.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace rattrap::core {

void MonitorScheduler::record_cpu(sim::SimTime t0, sim::SimTime t1,
                                  double cores) {
  assert(t0 <= t1);
  if (t0 == t1 || cores <= 0.0) return;
  cpu_.add_interval(t0, t1, static_cast<double>(t1 - t0) * cores);
  total_busy_ +=
      static_cast<sim::SimDuration>(static_cast<double>(t1 - t0) * cores);
}

double MonitorScheduler::busy_core_seconds(std::size_t second) const {
  return cpu_.bucket(second) / 1e6;  // stored in core-µs
}

double MonitorScheduler::cpu_percent(std::size_t second,
                                     double active_envs) const {
  if (active_envs <= 0.0) return 0.0;
  const double busy = busy_core_seconds(second);
  return std::min(100.0, 100.0 * busy / active_envs);
}

void MonitorScheduler::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_jobs_ = metric_jobs_peak_ = nullptr;
    metric_class_jobs_.fill(nullptr);
    metric_crashes_reported_ = metric_crashes_detected_ = nullptr;
    metric_active_envs_ = nullptr;
    return;
  }
  metric_jobs_ = &metrics->gauge("monitor.running_jobs");
  metric_jobs_peak_ = &metrics->gauge("monitor.peak_jobs");
  metric_active_envs_ = &metrics->gauge("monitor.active_envs");
  for (const qos::PriorityClass klass : qos::kAllClasses) {
    metric_class_jobs_[qos::class_index(klass)] = &metrics->gauge(
        std::string("qos.running.") + qos::to_string(klass));
  }
  metric_crashes_reported_ = &metrics->counter("monitor.crashes.reported");
  metric_crashes_detected_ = &metrics->counter("monitor.crashes.detected");
}

void MonitorScheduler::env_up(std::uint32_t env_id) {
  live_envs_.insert(env_id);
  if (metric_active_envs_ != nullptr) {
    metric_active_envs_->set(static_cast<double>(live_envs_.size()));
  }
}

void MonitorScheduler::env_down(std::uint32_t env_id) {
  live_envs_.erase(env_id);
  if (metric_active_envs_ != nullptr) {
    metric_active_envs_->set(static_cast<double>(live_envs_.size()));
  }
}

void MonitorScheduler::notify_crash(std::uint32_t env_id) {
  if (!pending_crashes_.insert(env_id).second) return;  // already reported
  ++reported_;
  if (metric_crashes_reported_ != nullptr) metric_crashes_reported_->inc();
  sim_.schedule_in(detection_latency_, [this, env_id]() {
    if (pending_crashes_.erase(env_id) == 0) return;
    ++detected_;
    if (metric_crashes_detected_ != nullptr) metric_crashes_detected_->inc();
    if (crash_handler_) crash_handler_(env_id);
  });
}

}  // namespace rattrap::core
