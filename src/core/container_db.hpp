// Container DB: the platform's registry of runtime environments.
//
// "Container DB stores information of Cloud Android Containers as basis of
// resource management" (§IV-A).  The same registry also tracks VM-backed
// environments so the three platform variants share one bookkeeping path.
//
// Storage layout (the dispatch hot path does one lookup per request):
// records live in a std::deque so the EnvRecord& returned by add()/find()
// stays stable for the environment's lifetime, while two flat hash maps
// (sim/flat_hash.hpp) index them — id→slot and bound-key→ids.  The key
// index keeps ids sorted ascending so find_by_key() still returns the
// lowest-id live match, exactly like the ordered-map scan it replaced.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/warehouse.hpp"  // EnvId
#include "obs/metrics.hpp"
#include "sim/flat_hash.hpp"
#include "sim/time.hpp"

namespace rattrap::core {

enum class EnvState : std::uint8_t {
  kProvisioning,  ///< booting, not yet connected to the Dispatcher
  kIdle,          ///< booted, no running job
  kBusy,          ///< executing offloaded code
  kDraining,      ///< no new leases; finishing in-flight work
  kRetired,       ///< stopped
};

[[nodiscard]] const char* to_string(EnvState state);

enum class EnvBacking : std::uint8_t { kVm, kContainer };

struct EnvRecord {
  EnvId id = 0;
  EnvBacking backing = EnvBacking::kContainer;
  EnvState state = EnvState::kProvisioning;
  sim::SimTime provisioned_at = 0;  ///< boot start
  sim::SimTime ready_at = 0;        ///< boot end + dispatcher registration
  sim::SimTime busy_until = 0;      ///< compute backlog horizon
  std::uint32_t jobs_executed = 0;
  /// Dispatcher binding (device or app key).  Indexed — change it through
  /// ContainerDb::rebind(), never by assigning to this field.
  std::string bound_key;
};

class ContainerDb {
 public:
  /// Registers a new environment; returns its record.  The reference is
  /// stable for the environment's lifetime.
  EnvRecord& add(EnvId id, EnvBacking backing, std::string bound_key,
                 sim::SimTime now);

  [[nodiscard]] EnvRecord* find(EnvId id);
  [[nodiscard]] const EnvRecord* find(EnvId id) const;

  /// Environment bound to `key`, if any: the lowest-id non-retired match.
  [[nodiscard]] EnvRecord* find_by_key(std::string_view key);

  /// Re-points an environment's binding key, keeping the key index
  /// coherent. Returns false for unknown ids.
  bool rebind(EnvId id, std::string key);

  bool retire(EnvId id);

  [[nodiscard]] std::size_t count() const { return by_id_.size(); }
  [[nodiscard]] std::size_t count_in(EnvState state) const;

  /// Environments live (not retired) — the Fig. 2 active-env denominator.
  [[nodiscard]] std::size_t active_count() const;

  [[nodiscard]] std::vector<EnvId> ids() const;

  /// Attaches a metrics registry: registrations/retirements count into
  /// envdb.added / envdb.retired and envdb.active tracks the live
  /// environment population. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void unindex_key(const std::string& key, EnvId id);
  void index_key(const std::string& key, EnvId id);

  std::deque<EnvRecord> records_;  ///< stable addresses; never shrinks
  sim::FlatHashMap<EnvId, std::uint32_t> by_id_;  ///< id → records_ slot
  /// bound key → ids holding it, sorted ascending (usually size 1).
  sim::FlatHashMap<std::string, std::vector<EnvId>> by_key_;
  obs::Counter* metric_added_ = nullptr;
  obs::Counter* metric_retired_ = nullptr;
  obs::Gauge* metric_active_ = nullptr;
};

}  // namespace rattrap::core
