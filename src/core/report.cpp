#include "core/report.hpp"

#include <sstream>

namespace rattrap::core {

PlatformReport snapshot(Platform& platform) {
  PlatformReport report;
  CloudServer& server = platform.server();
  report.environments_total = platform.env_count();
  report.environments_retired =
      server.env_db().count_in(EnvState::kRetired);
  report.environments_active = server.env_db().active_count();
  report.cached_apps = server.warehouse().entry_count();
  report.cached_bytes = server.warehouse().stored_bytes();
  report.cache_hits = server.warehouse().hit_count();
  report.cache_misses = server.warehouse().miss_count();
  report.permission_tables = server.access().table_count();
  report.tmpfs_used_bytes = server.shared_layer().offload_io().used_bytes();
  report.tmpfs_peak_bytes = server.shared_layer().offload_io().peak_bytes();
  report.disk_read_bytes = server.disk().total_read_bytes();
  report.disk_write_bytes = server.disk().total_write_bytes();
  report.cpu_busy_seconds = sim::to_seconds(server.monitor().total_busy());
  report.vm_memory_committed = server.hypervisor().memory_committed();
  report.kernel_modules = server.kernel().loaded_modules().size();
  return report;
}

std::string to_text(const PlatformReport& report) {
  std::ostringstream out;
  const auto mb = [](std::uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  out << "environments: " << report.environments_total << " total, "
      << report.environments_active << " active, "
      << report.environments_retired << " retired\n";
  out << "warehouse: " << report.cached_apps << " app(s), "
      << mb(report.cached_bytes) << " MB cached, " << report.cache_hits
      << " hits / " << report.cache_misses << " misses\n";
  out << "access controller: " << report.permission_tables
      << " permission table(s)\n";
  out << "offloading tmpfs: " << mb(report.tmpfs_used_bytes)
      << " MB in use (peak " << mb(report.tmpfs_peak_bytes) << " MB)\n";
  out << "disk: " << mb(report.disk_read_bytes) << " MB read, "
      << mb(report.disk_write_bytes) << " MB written\n";
  out << "cpu busy: " << report.cpu_busy_seconds << " core-seconds\n";
  out << "vm memory committed: " << mb(report.vm_memory_committed)
      << " MB\n";
  out << "kernel modules loaded: " << report.kernel_modules << "\n";
  return out.str();
}

std::string csv_header() {
  return "envs_total,envs_active,envs_retired,cached_apps,cached_bytes,"
         "cache_hits,cache_misses,permission_tables,tmpfs_used,tmpfs_peak,"
         "disk_read,disk_write,cpu_busy_s,vm_memory,kernel_modules";
}

std::string to_csv(const PlatformReport& report) {
  std::ostringstream out;
  out << report.environments_total << ',' << report.environments_active
      << ',' << report.environments_retired << ',' << report.cached_apps
      << ',' << report.cached_bytes << ',' << report.cache_hits << ','
      << report.cache_misses << ',' << report.permission_tables << ','
      << report.tmpfs_used_bytes << ',' << report.tmpfs_peak_bytes << ','
      << report.disk_read_bytes << ',' << report.disk_write_bytes << ','
      << report.cpu_busy_seconds << ',' << report.vm_memory_committed
      << ',' << report.kernel_modules;
  return out.str();
}

}  // namespace rattrap::core
