#include "scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string_view>

#include "core/load_driver.hpp"
#include "core/platform.hpp"
#include "core/qos/qos.hpp"
#include "net/link.hpp"
#include "obs/json.hpp"
#include "sim/fault.hpp"
#include "trace/livelab.hpp"

#include "../cli_util.hpp"

namespace rattrap::experiments {

namespace {

/// Every manifest key the executor understands.  Validated up front so a
/// typo'd key fails the run instead of silently running defaults — the
/// same teeth the strict CLI parsers give the flag surface.
const std::set<std::string_view>& known_keys() {
  static const std::set<std::string_view> keys = {
      "scenario",    "quick",
      "arrival",     "platform",   "link",
      "devices",     "requests",   "rate",
      "burst_factor", "mean_burst_s", "mean_calm_s",
      "think",       "profile",    "profile_period", "profile_peak",
      "flash_at",    "flash_duration", "flash_factor",
      "trace_file",  "trace_users", "trace_days",
      "trace_sessions_per_day",     "trace_seed",
      "trace_scale", "trace_repeat",
      "kind",        "task_variants", "seed",
      "admission",   "queue",      "max_in_service",
      "tenant_rate", "shed",       "qos",  "mix",
      "rac",         "rac_threshold", "rac_block_s", "rac_quota",
      "tenant_queue_quota",
      "elastic",     "elastic_target", "elastic_max",
      "faults",      "storm_crashes", "storm_at", "storm_spacing",
      "handoff",     "invariants", "warm_pool", "adaptive",
  };
  return keys;
}

bool parse_link(const std::string& v, net::LinkConfig& out) {
  if (v == "lan" || v == "wifi") out = net::lan_wifi();
  else if (v == "wan") out = net::wan_wifi();
  else if (v == "3g") out = net::cellular_3g();
  else if (v == "4g") out = net::cellular_4g();
  else return false;
  return true;
}

bool parse_on_off(const std::string& v, bool& out) {
  if (v == "on" || v == "true" || v == "1") out = true;
  else if (v == "off" || v == "false" || v == "0") out = false;
  else return false;
  return true;
}

bool parse_adversary(const std::string& v, sim::AdversaryProfile& out) {
  if (v == "none") out = sim::AdversaryProfile::kNone;
  else if (v == "probe") out = sim::AdversaryProfile::kPermissionProbe;
  else if (v == "flood") out = sim::AdversaryProfile::kClassFlood;
  else if (v == "thrash") out = sim::AdversaryProfile::kCacheThrash;
  else if (v == "noisy") out = sim::AdversaryProfile::kNoisyNeighbor;
  else return false;
  return true;
}

/// "tenant:class[:weight[:share[:adversary]]]" entries separated by ';';
/// adversary is none|probe|flood|thrash|noisy (docs/RAC.md).
bool parse_mix(const std::string& spec,
               std::vector<sim::TrafficClassMix>& out) {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i != spec.size() && spec[i] != ';') continue;
    const std::string entry = spec.substr(start, i - start);
    start = i + 1;
    if (entry.empty()) return false;
    std::vector<std::string> parts;
    std::string current;
    for (const char c : entry) {
      if (c == ':') {
        parts.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    parts.push_back(current);
    if (parts.size() < 2 || parts.size() > 5) return false;
    sim::TrafficClassMix mix;
    mix.tenant = parts[0];
    const auto klass = core::qos::parse_class(parts[1]);
    if (!klass) return false;
    mix.priority =
        static_cast<std::uint8_t>(core::qos::class_index(*klass));
    if (parts.size() > 2 &&
        (!cli::parse_u32(parts[2], mix.weight) || mix.weight == 0)) {
      return false;
    }
    if (parts.size() > 3 &&
        (!cli::parse_double(parts[3], mix.share) || mix.share <= 0)) {
      return false;
    }
    if (parts.size() > 4 && !parse_adversary(parts[4], mix.adversary)) {
      return false;
    }
    out.push_back(std::move(mix));
  }
  return !out.empty();
}

/// "radio:at_s[:outage_s]" entries separated by ';'.
bool parse_handoffs(const std::string& spec,
                    std::vector<core::HandoffEvent>& out) {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i != spec.size() && spec[i] != ';') continue;
    const std::string entry = spec.substr(start, i - start);
    start = i + 1;
    if (entry.empty()) return false;
    std::vector<std::string> parts;
    std::string current;
    for (const char c : entry) {
      if (c == ':') {
        parts.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    parts.push_back(current);
    if (parts.size() < 2 || parts.size() > 3) return false;
    core::HandoffEvent event;
    if (!parse_link(parts[0], event.to)) return false;
    double at_s = 0;
    if (!cli::parse_double(parts[1], at_s) || at_s < 0) return false;
    event.at = sim::from_seconds(at_s);
    if (parts.size() > 2) {
      double outage_s = 0;
      if (!cli::parse_double(parts[2], outage_s) || outage_s < 0) {
        return false;
      }
      event.outage = sim::from_seconds(outage_s);
    }
    out.push_back(std::move(event));
  }
  return !out.empty();
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

std::uint64_t fingerprint64(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

const double* RunResult::metric(std::string_view name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string RunResult::to_kv() const {
  std::string out;
  for (const auto& [key, value] : metrics) {
    out += "m." + key + "=" + obs::json_number(value) + "\n";
  }
  for (const auto& [key, value] : info) {
    out += "i." + key + "=" + value + "\n";
  }
  out += "ok=1\n";
  return out;
}

std::string RunResult::to_json(const RunSpec& spec) const {
  std::string out = "{\n  \"experiment\": " + obs::json_quote(spec.experiment);
  out += ",\n  \"label\": " + obs::json_quote(spec.label);
  out += ",\n  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : spec.params) {
    out += first ? "\n" : ",\n";
    out += "    " + obs::json_quote(key) + ": " + obs::json_quote(value);
    first = false;
  }
  out += "\n  },\n  \"metrics\": {";
  first = true;
  for (const auto& [key, value] : metrics) {
    out += first ? "\n" : ",\n";
    out += "    " + obs::json_quote(key) + ": " + obs::json_number(value);
    first = false;
  }
  out += "\n  },\n  \"info\": {";
  first = true;
  for (const auto& [key, value] : info) {
    out += first ? "\n" : ",\n";
    out += "    " + obs::json_quote(key) + ": " + obs::json_quote(value);
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

RunResult execute_run(const RunSpec& spec) {
  RunResult result;
  const auto fail = [&](const std::string& what) {
    result.ok = false;
    result.error = "[" + spec.experiment + "/" + spec.label + "] " + what;
    return result;
  };

  for (const auto& [key, value] : spec.params) {
    (void)value;
    if (known_keys().count(key) == 0) {
      return fail("unknown manifest key '" + key + "'");
    }
  }

  const auto get = [&](const char* key) -> const std::string* {
    const auto it = spec.params.find(key);
    return it == spec.params.end() ? nullptr : &it->second;
  };
  // Absent keys keep the default (return true); present keys must parse.
  std::string parse_error;
  const auto get_double = [&](const char* key, double& out) {
    const std::string* v = get(key);
    if (v == nullptr) return true;
    if (!cli::parse_double(*v, out)) {
      parse_error = std::string("bad numeric value for '") + key + "'";
      return false;
    }
    return true;
  };
  const auto get_u32 = [&](const char* key, std::uint32_t& out) {
    const std::string* v = get(key);
    if (v == nullptr) return true;
    if (!cli::parse_u32(*v, out)) {
      parse_error = std::string("bad integer value for '") + key + "'";
      return false;
    }
    return true;
  };
  const auto get_u64 = [&](const char* key, std::uint64_t& out) {
    const std::string* v = get(key);
    if (v == nullptr) return true;
    if (!cli::parse_u64(*v, out)) {
      parse_error = std::string("bad integer value for '") + key + "'";
      return false;
    }
    return true;
  };

  // -- Platform ----------------------------------------------------------
  core::PlatformKind kind = core::PlatformKind::kRattrap;
  if (const std::string* v = get("platform")) {
    if (*v == "rattrap") kind = core::PlatformKind::kRattrap;
    else if (*v == "rattrap-noopt") kind = core::PlatformKind::kRattrapWithoutOpt;
    else if (*v == "vmcloud") kind = core::PlatformKind::kVmCloud;
    else return fail("unknown platform '" + *v + "'");
  }
  net::LinkConfig link = net::lan_wifi();
  if (const std::string* v = get("link")) {
    if (!parse_link(*v, link)) return fail("unknown link '" + *v + "'");
  }
  core::PlatformConfig platform_config = core::make_config(kind, link);

  // -- Load --------------------------------------------------------------
  core::LoadDriverConfig driver;
  sim::LoadGenConfig& loadgen = driver.loadgen;
  loadgen.devices = 100;
  loadgen.requests = 500;
  if (const std::string* v = get("arrival")) {
    if (*v == "poisson") loadgen.arrival = sim::ArrivalProcess::kPoisson;
    else if (*v == "mmpp") loadgen.arrival = sim::ArrivalProcess::kMmpp;
    else if (*v == "closed") loadgen.arrival = sim::ArrivalProcess::kClosedLoop;
    else if (*v == "trace") loadgen.arrival = sim::ArrivalProcess::kTraceReplay;
    else return fail("unknown arrival '" + *v + "'");
  }
  std::uint64_t requests = loadgen.requests;
  if (!get_u32("devices", loadgen.devices) || !get_u64("requests", requests) ||
      !get_double("rate", loadgen.rate_per_s) ||
      !get_double("burst_factor", loadgen.burst_factor) ||
      !get_double("mean_burst_s", loadgen.mean_burst_s) ||
      !get_double("mean_calm_s", loadgen.mean_calm_s) ||
      !get_double("think", loadgen.think_time_s) ||
      !get_double("profile_period", loadgen.profile_period_s) ||
      !get_double("profile_peak", loadgen.profile_peak_factor) ||
      !get_double("flash_at", loadgen.flash_at_s) ||
      !get_double("flash_duration", loadgen.flash_duration_s) ||
      !get_double("flash_factor", loadgen.flash_factor) ||
      !get_double("trace_scale", loadgen.trace_time_scale) ||
      !get_u32("trace_repeat", loadgen.trace_repeat) ||
      !get_u64("seed", loadgen.seed)) {
    return fail(parse_error);
  }
  loadgen.requests = requests;
  if (loadgen.devices == 0 || loadgen.requests == 0) {
    return fail("devices and requests must be > 0");
  }
  if (loadgen.trace_time_scale <= 0) return fail("trace_scale must be > 0");
  if (const std::string* v = get("profile")) {
    if (*v == "flat") loadgen.profile = sim::RateProfile::kFlat;
    else if (*v == "ramp") loadgen.profile = sim::RateProfile::kRamp;
    else if (*v == "diurnal") loadgen.profile = sim::RateProfile::kDiurnal;
    else return fail("unknown profile '" + *v + "'");
  }
  if (const std::string* v = get("mix")) {
    if (!parse_mix(*v, loadgen.mix)) return fail("bad mix spec '" + *v + "'");
  }

  // -- Trace source ------------------------------------------------------
  if (loadgen.arrival == sim::ArrivalProcess::kTraceReplay) {
    if (const std::string* v = get("trace_file")) {
      const auto loaded = trace::load_csv(*v);
      if (!loaded) return fail("cannot load trace '" + *v + "'");
      loadgen.trace.reserve(loaded->size());
      for (const trace::TraceEvent& event : *loaded) {
        loadgen.trace.push_back(sim::TraceArrival{event.time, event.user});
      }
    } else {
      trace::TraceConfig trace_config;
      std::uint64_t trace_seed = trace_config.seed;
      if (!get_u32("trace_users", trace_config.users) ||
          !get_u32("trace_days", trace_config.days) ||
          !get_double("trace_sessions_per_day",
                      trace_config.sessions_per_day) ||
          !get_u64("trace_seed", trace_seed)) {
        return fail(parse_error);
      }
      trace_config.seed = trace_seed;
      for (const trace::TraceEvent& event :
           trace::generate(trace_config)) {
        loadgen.trace.push_back(sim::TraceArrival{event.time, event.user});
      }
    }
    if (loadgen.trace.empty()) return fail("trace has no events");
  }

  // -- Workload ----------------------------------------------------------
  if (const std::string* v = get("kind")) {
    if (*v == "linpack") driver.kind = workloads::Kind::kLinpack;
    else if (*v == "ocr") driver.kind = workloads::Kind::kOcr;
    else if (*v == "chess") driver.kind = workloads::Kind::kChess;
    else if (*v == "virusscan") driver.kind = workloads::Kind::kVirusScan;
    else return fail("unknown kind '" + *v + "'");
  }
  if (!get_u32("task_variants", driver.task_variants)) {
    return fail(parse_error);
  }

  // -- Admission / QoS ---------------------------------------------------
  core::AdmissionConfig& admission = platform_config.admission;
  if (const std::string* v = get("admission")) {
    if (!parse_on_off(*v, admission.enabled)) {
      return fail("admission must be on|off");
    }
  }
  if (const std::string* v = get("qos")) {
    if (!parse_on_off(*v, admission.qos.enabled)) {
      return fail("qos must be on|off");
    }
    if (admission.qos.enabled) admission.enabled = true;
  }
  if (!get_u32("queue", admission.queue_capacity) ||
      !get_u32("max_in_service", admission.max_in_service) ||
      !get_double("tenant_rate", admission.tenant_rate_per_s) ||
      !get_double("shed", admission.shed_utilization) ||
      !get_u32("tenant_queue_quota", admission.tenant_queue_quota)) {
    return fail(parse_error);
  }

  // -- Request-based Access Controller (docs/RAC.md) ---------------------
  core::AccessConfig& access = platform_config.access;
  std::uint32_t rac_threshold = access.violation_threshold;
  double rac_block_s = 0.0;
  std::uint32_t rac_quota = access.tenant_quota;
  if (!get_u32("rac_threshold", rac_threshold) ||
      !get_double("rac_block_s", rac_block_s) ||
      !get_u32("rac_quota", rac_quota)) {
    return fail(parse_error);
  }
  if (rac_threshold == 0) return fail("rac_threshold must be > 0");
  access.violation_threshold = rac_threshold;
  if (rac_block_s > 0) access.block_duration = sim::from_seconds(rac_block_s);
  access.tenant_quota = rac_quota;
  if (const std::string* v = get("rac")) {
    bool rac_on = true;
    if (!parse_on_off(*v, rac_on)) return fail("rac must be on|off");
    if (!rac_on) {
      // Teeth ablation: an unreachable threshold and no quota neutralize
      // the defense layer while the permission tables stay live — the
      // attack scenarios must demonstrably fail without it.
      access.violation_threshold = 0xFFFFFFFFu;
      access.tenant_quota = 0;
    }
  }

  // -- Elastic capacity --------------------------------------------------
  if (const std::string* v = get("elastic")) {
    if (*v == "off") {
      platform_config.elastic.mode = core::elastic::PoolMode::kDisabled;
    } else if (*v == "static") {
      platform_config.elastic.mode = core::elastic::PoolMode::kStatic;
    } else if (*v == "predictive") {
      platform_config.elastic.mode = core::elastic::PoolMode::kPredictive;
    } else {
      return fail("elastic must be off|static|predictive");
    }
  }
  if (!get_u32("elastic_target", platform_config.elastic.static_target) ||
      !get_u32("elastic_max", platform_config.elastic.max_warm) ||
      !get_u32("warm_pool", platform_config.warm_pool)) {
    return fail(parse_error);
  }

  // -- Faults (plan + grouped crash storm) -------------------------------
  if (const std::string* v = get("faults")) {
    const auto plan = sim::FaultPlan::parse(*v);
    if (!plan) return fail("bad fault spec '" + *v + "'");
    platform_config.fault_plan = *plan;
  }
  std::uint32_t storm_crashes = 0;
  double storm_at = 0.0;
  double storm_spacing = 0.05;
  if (!get_u32("storm_crashes", storm_crashes) ||
      !get_double("storm_at", storm_at) ||
      !get_double("storm_spacing", storm_spacing)) {
    return fail(parse_error);
  }
  for (std::uint32_t i = 0; i < storm_crashes; ++i) {
    sim::FaultRule rule;
    rule.kind = sim::FaultKind::kContainerCrash;
    rule.at = sim::from_seconds(storm_at + storm_spacing *
                                               static_cast<double>(i));
    platform_config.fault_plan.add(rule);
  }

  // -- Mobility ----------------------------------------------------------
  if (const std::string* v = get("handoff")) {
    if (!parse_handoffs(*v, platform_config.mobility)) {
      return fail("bad handoff spec '" + *v + "' (radio:at_s[:outage_s];...)");
    }
  }
  if (const std::string* v = get("adaptive")) {
    if (!parse_on_off(*v, platform_config.adaptive_offloading)) {
      return fail("adaptive must be on|off");
    }
  }

  // -- Invariants --------------------------------------------------------
  // auto: force the post-event harness at CI scale, skip it for big runs
  // (the checks are O(live sessions × envs) per event).
  platform_config.force_invariants = loadgen.requests <= 2000;
  if (const std::string* v = get("invariants")) {
    if (*v == "force" || *v == "on") {
      platform_config.force_invariants = true;
    } else if (*v == "off") {
      platform_config.force_invariants = false;
      platform_config.check_invariants = false;
    } else if (*v != "auto") {
      return fail("invariants must be auto|on|off");
    }
  }

  platform_config.seed = loadgen.seed;

  // -- Execute -----------------------------------------------------------
  core::Platform platform(std::move(platform_config));
  const core::LoadSummary summary = core::run_load(platform, driver);

  // -- Reduce ------------------------------------------------------------
  const auto put = [&](const char* key, double value) {
    result.metrics.emplace_back(key, value);
  };
  const auto counter = [&](const char* name) -> double {
    const obs::Counter* c = platform.metrics().find_counter(name);
    return c == nullptr ? 0.0 : static_cast<double>(c->value());
  };

  bool accounting_ok =
      summary.offered == summary.completed + summary.rejected;
  std::size_t class_offered = 0;
  for (const core::qos::PriorityClass klass : core::qos::kAllClasses) {
    const core::ClassLoadStats& stats = summary.for_class(klass);
    class_offered += stats.offered;
    if (stats.offered != stats.completed + stats.rejected) {
      accounting_ok = false;
    }
  }
  if (class_offered != summary.offered) accounting_ok = false;
  // The identity must also hold per tenant — a swept attacker's requests
  // land in `rejected`, never in a silent gap (docs/RAC.md).
  std::size_t tenant_offered = 0;
  for (const auto& [name, stats] : summary.by_tenant) {
    (void)name;
    tenant_offered += stats.offered;
    if (stats.offered != stats.completed + stats.rejected) {
      accounting_ok = false;
    }
  }
  if (tenant_offered != summary.offered) accounting_ok = false;

  put("offered", static_cast<double>(summary.offered));
  put("completed", static_cast<double>(summary.completed));
  put("rejected", static_cast<double>(summary.rejected));
  put("stranded", static_cast<double>(summary.stranded));
  put("resumed", static_cast<double>(summary.resumed));
  put("completed_share",
      summary.offered == 0
          ? 0.0
          : static_cast<double>(summary.completed) /
                static_cast<double>(summary.offered));
  put("accounting_ok", accounting_ok ? 1.0 : 0.0);
  put("duration_s", summary.duration_s);
  put("offered_rate_per_s", summary.offered_rate_per_s);
  put("goodput_per_s", summary.goodput_per_s);
  put("mean_ms", summary.mean_ms);
  put("p50_ms", summary.p50_ms);
  put("p95_ms", summary.p95_ms);
  put("p99_ms", summary.p99_ms);
  put("mean_queue_wait_ms", summary.mean_queue_wait_ms);
  put("invariant_violations",
      static_cast<double>(platform.invariants().total_violations()));
  put("faults_fired",
      platform.fault_injector() == nullptr
          ? 0.0
          : static_cast<double>(platform.fault_injector()->total_fired()));
  put("handoffs", counter("mobility.handoffs"));
  put("outages", counter("mobility.outages"));
  put("sessions_resumed", counter("mobility.sessions_resumed"));
  put("rac.violations", counter("rac.violations"));
  put("rac.blocks", counter("rac.blocks"));
  put("rac.unblocks", counter("rac.unblocks"));
  put("rac.denied.blocked", counter("rac.denied.blocked"));
  put("rac.denied.violation", counter("rac.denied.violation"));
  put("rac.denied.quota", counter("rac.denied.quota"));
  put("admission.rejected.tenant_quota",
      counter("admission.rejected.tenant_quota"));

  std::size_t radio_slices = 0;
  double min_transfer = 0.0;
  double max_transfer = 0.0;
  for (const auto& [name, radio] : summary.by_radio) {
    (void)name;
    if (radio.completed == 0) continue;
    if (radio_slices == 0 || radio.mean_transfer_ms < min_transfer) {
      min_transfer = radio.mean_transfer_ms;
    }
    max_transfer = std::max(max_transfer, radio.mean_transfer_ms);
    ++radio_slices;
  }
  put("radio_slices", static_cast<double>(radio_slices));
  put("radio_transfer_ratio",
      radio_slices >= 2 && min_transfer > 0 ? max_transfer / min_transfer
                                            : 1.0);
  put("env_count", static_cast<double>(platform.env_count()));

  for (const auto& [reason, count] : summary.rejects_by_reason) {
    result.metrics.emplace_back(
        std::string("reject.") + core::to_string(reason),
        static_cast<double>(count));
  }
  for (const core::qos::PriorityClass klass : core::qos::kAllClasses) {
    const core::ClassLoadStats& stats = summary.for_class(klass);
    if (stats.offered == 0) continue;
    const std::string prefix =
        std::string("class.") + core::qos::to_string(klass) + ".";
    result.metrics.emplace_back(prefix + "offered",
                                static_cast<double>(stats.offered));
    result.metrics.emplace_back(prefix + "completed",
                                static_cast<double>(stats.completed));
    result.metrics.emplace_back(prefix + "rejected",
                                static_cast<double>(stats.rejected));
    result.metrics.emplace_back(prefix + "p99_ms", stats.p99_ms);
  }
  for (const auto& [name, stats] : summary.by_tenant) {
    if (name.empty()) continue;  // per-app tenancy has no stable label
    const std::string prefix = "tenant." + name + ".";
    result.metrics.emplace_back(prefix + "offered",
                                static_cast<double>(stats.offered));
    result.metrics.emplace_back(prefix + "completed",
                                static_cast<double>(stats.completed));
    result.metrics.emplace_back(prefix + "rejected",
                                static_cast<double>(stats.rejected));
    if (stats.completed > 0) {
      result.metrics.emplace_back(prefix + "p99_ms", stats.p99_ms);
    }
  }
  for (const auto& [name, radio] : summary.by_radio) {
    if (radio.completed == 0) continue;
    const std::string prefix = "radio." + name + ".";
    result.metrics.emplace_back(prefix + "completed",
                                static_cast<double>(radio.completed));
    result.metrics.emplace_back(prefix + "transfer_ms",
                                radio.mean_transfer_ms);
    result.metrics.emplace_back(prefix + "response_ms",
                                radio.mean_response_ms);
    result.metrics.emplace_back(prefix + "energy_mj", radio.mean_energy_mj);
  }

  result.info.emplace_back("arrival", to_string(loadgen.arrival));
  result.info.emplace_back("platform",
                           core::to_string(platform.config().kind));
  result.info.emplace_back("link", link.name);  // base radio (pre-handoff)
  result.info.emplace_back("profile", to_string(loadgen.profile));
  if (!platform.config().fault_plan.empty()) {
    result.info.emplace_back("faults", platform.config().fault_plan.spec());
  }
  result.info.emplace_back(
      "metrics_fingerprint",
      hex64(fingerprint64(platform.metrics().to_json())));

  result.ok = true;
  return result;
}

}  // namespace rattrap::experiments
