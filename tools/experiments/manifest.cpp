#include "manifest.hpp"

#include <algorithm>
#include <cstdio>

namespace rattrap::experiments {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_meta_key(std::string_view key) {
  return key.rfind("expect.", 0) == 0 || key.rfind("full.", 0) == 0;
}

/// Splits a value on '|' into trimmed grid elements; empty elements are
/// a parse error (reported by the caller via the empty-string sentinel).
std::vector<std::string> split_grid(std::string_view value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == '|') {
      out.emplace_back(trim(value.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>* Experiment::find(std::string_view key) const {
  for (const auto& [k, values] : keys) {
    if (k == key) return &values;
  }
  return nullptr;
}

bool Experiment::flag(std::string_view key, bool fallback) const {
  const std::vector<std::string>* values = find(key);
  if (values == nullptr || values->empty()) return fallback;
  const std::string& v = values->front();
  return v == "true" || v == "on" || v == "1" || v == "yes";
}

const Experiment* Manifest::find(std::string_view name) const {
  for (const Experiment& experiment : experiments) {
    if (experiment.name == name) return &experiment;
  }
  return nullptr;
}

std::optional<Manifest> parse_manifest(std::string_view text,
                                       std::string& error) {
  Manifest manifest;
  Experiment* current = nullptr;
  std::size_t line_no = 0;
  std::size_t start = 0;
  const auto fail = [&](const std::string& what) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "line %zu: ", line_no);
    error = buf + what;
    return std::nullopt;
  };
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    ++line_no;
    std::string_view line = trim(text.substr(start, i - start));
    start = i + 1;
    if (line.empty() || line.front() == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated section header");
      const std::string name{trim(line.substr(1, line.size() - 2))};
      if (name.empty()) return fail("empty experiment name");
      if (manifest.find(name) != nullptr) {
        return fail("duplicate experiment [" + name + "]");
      }
      manifest.experiments.push_back(Experiment{name, {}});
      current = &manifest.experiments.back();
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail("expected 'key = value' or '[section]'");
    }
    if (current == nullptr) return fail("key before any [experiment]");
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) return fail("empty key");
    if (current->find(key) != nullptr) {
      return fail("duplicate key '" + key + "' in [" + current->name + "]");
    }
    std::vector<std::string> values = split_grid(value);
    for (const std::string& v : values) {
      if (v.empty()) return fail("empty grid element in '" + key + "'");
    }
    if (is_meta_key(key) && values.size() > 1) {
      return fail("'" + key + "' cannot be a grid axis");
    }
    current->keys.emplace_back(key, std::move(values));
  }
  if (manifest.experiments.empty()) {
    error = "manifest declares no experiments";
    return std::nullopt;
  }
  return manifest;
}

std::size_t grid_size(const Experiment& experiment, std::string& error) {
  std::size_t size = 1;
  for (const auto& [key, values] : experiment.keys) {
    if (is_meta_key(key)) continue;
    if (values.empty()) {
      error = "key '" + key + "' has no value";
      return 0;
    }
    size *= values.size();
  }
  return size;
}

std::optional<RunSpec> resolve_point(const Experiment& experiment,
                                     std::size_t point, bool quick,
                                     std::string& error) {
  const std::size_t total = grid_size(experiment, error);
  if (total == 0) return std::nullopt;
  if (point >= total) {
    error = "point out of range";
    return std::nullopt;
  }
  RunSpec spec;
  spec.experiment = experiment.name;
  spec.point = point;

  // Odometer decode, last declared axis fastest: walk the axes in
  // reverse, peeling each one's index off `point`.
  std::map<std::string, std::size_t> axis_index;
  std::size_t rest = point;
  for (auto it = experiment.keys.rbegin(); it != experiment.keys.rend();
       ++it) {
    if (is_meta_key(it->first) || it->second.size() <= 1) continue;
    axis_index[it->first] = rest % it->second.size();
    rest /= it->second.size();
  }

  std::vector<std::pair<std::string, std::string>> full_overrides;
  std::string label;
  for (const auto& [key, values] : experiment.keys) {
    if (key.rfind("expect.", 0) == 0) {
      spec.expect[key.substr(7)] = values.front();
      continue;
    }
    if (key.rfind("full.", 0) == 0) {
      full_overrides.emplace_back(key.substr(5), values.front());
      continue;
    }
    const auto axis = axis_index.find(key);
    const std::string& value =
        axis == axis_index.end() ? values.front() : values[axis->second];
    spec.params[key] = value;
    if (axis != axis_index.end()) {
      if (!label.empty()) label += ',';
      label += key + '=' + value;
    }
  }
  if (!quick) {
    for (auto& [key, value] : full_overrides) spec.params[key] = value;
  }
  spec.label = label.empty() ? "base" : label;
  return spec;
}

std::string sanitize_label(std::string_view label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_' || c == '=' || c == ',';
    out.push_back(safe ? c : '_');
  }
  return out;
}

}  // namespace rattrap::experiments
