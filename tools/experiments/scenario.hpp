// Scenario executor: maps one resolved RunSpec onto a PlatformConfig +
// LoadDriverConfig, runs the load to completion, and reduces the result
// to a flat, deterministic metric map the sweep driver evaluates
// criteria against (EXPERIMENTS.md lists every manifest key and every
// emitted metric).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "manifest.hpp"

namespace rattrap::experiments {

/// Outcome of executing one run.  Metrics and info are insertion-ordered
/// so serialized artifacts are byte-stable run to run.
struct RunResult {
  bool ok = false;
  std::string error;  ///< set when !ok (config or execution failure)
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, std::string>> info;

  [[nodiscard]] const double* metric(std::string_view name) const;

  /// Flat key=value lines ("m.<metric>=", "i.<info>=", trailing "ok=1")
  /// — the child→parent result channel; trivially parseable without a
  /// JSON reader.
  [[nodiscard]] std::string to_kv() const;

  /// Rich per-run artifact (params + metrics + info).
  [[nodiscard]] std::string to_json(const RunSpec& spec) const;
};

/// Executes `spec` in-process.  Never throws; config errors (unknown
/// keys, bad values, missing trace files) come back as !ok with a
/// diagnostic naming the key.
[[nodiscard]] RunResult execute_run(const RunSpec& spec);

/// FNV-1a (the determinism fingerprint used across the repo's tools).
[[nodiscard]] std::uint64_t fingerprint64(std::string_view text);

}  // namespace rattrap::experiments
