// Experiment-manifest format for the sweep driver (tools/experiments).
//
// A manifest is an INI-like text file naming experiments and the
// parameter grid each one sweeps (EXPERIMENTS.md documents every key):
//
//   # comment
//   [handoff-wifi-3g]
//   scenario = handoff          # grouping label for reports
//   quick    = true             # member of the --quick curated subset
//   arrival  = poisson
//   rate     = 40
//   seed     = 1|2              # '|' separates grid-axis values
//   handoff  = 3g:4:1.5
//   expect.accounting = identity
//   expect.min.radio_slices = 2
//
// Every non-expect key with more than one '|'-separated value is a grid
// axis; an experiment's runs are the cartesian product of its axes, in
// deterministic odometer order (last axis fastest).  `expect.*` keys are
// pass/fail criteria evaluated per run; `full.<key>` values override
// `<key>` when the sweep runs without --quick, so one manifest carries
// both the CI-sized and the full-scale shape of an experiment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rattrap::experiments {

/// One named experiment: keys in declaration order, each with its list
/// of grid values (size 1 = fixed parameter).
struct Experiment {
  std::string name;
  std::vector<std::pair<std::string, std::vector<std::string>>> keys;

  /// The values of `key`, or nullptr when absent.
  [[nodiscard]] const std::vector<std::string>* find(
      std::string_view key) const;

  /// Boolean key ("true"/"on"/"1" ⇒ true); `fallback` when absent.
  [[nodiscard]] bool flag(std::string_view key, bool fallback) const;
};

struct Manifest {
  std::vector<Experiment> experiments;

  [[nodiscard]] const Experiment* find(std::string_view name) const;
};

/// Parses manifest text; std::nullopt + a diagnostic in `error` on any
/// malformed line (unnamed keys, duplicate sections, grid values on
/// expect.*/full.* keys, empty axis elements).
[[nodiscard]] std::optional<Manifest> parse_manifest(std::string_view text,
                                                     std::string& error);

/// One resolved grid point of an experiment, ready to execute.
struct RunSpec {
  std::string experiment;
  std::size_t point = 0;
  /// Axis assignment ("rate=40,seed=2"), or "base" for a gridless run.
  std::string label;
  std::map<std::string, std::string> params;  ///< resolved non-expect keys
  std::map<std::string, std::string> expect;  ///< criteria, prefix stripped
};

/// Cartesian-product size of the experiment's grid; 0 with a diagnostic
/// when a grid is malformed (a '|' list on an expect.*/full.* key).
[[nodiscard]] std::size_t grid_size(const Experiment& experiment,
                                    std::string& error);

/// Resolves grid point `point` (odometer order, last declared axis
/// fastest).  `quick` false applies the full.<key> overrides.
[[nodiscard]] std::optional<RunSpec> resolve_point(
    const Experiment& experiment, std::size_t point, bool quick,
    std::string& error);

/// Filesystem-safe form of a run label (axis separators kept readable).
[[nodiscard]] std::string sanitize_label(std::string_view label);

}  // namespace rattrap::experiments
