// experiments — named-experiment sweep driver (EXPERIMENTS.md).
//
// Enumerates the parameter grids of an experiment manifest (loadgen
// profile × fault plan × QoS mix × capacity mode × mobility plan), runs
// every grid point in parallel worker processes, and reduces the results
// to per-run JSON/CSV artifacts plus a machine-readable summary with
// pass/fail criteria per experiment — the artifact the CI
// experiment-matrix gate consumes:
//
//   experiments --quick --out experiments-out        # curated CI subset
//   experiments --manifest sweeps.ini --jobs 8       # full custom sweep
//   experiments --list                               # what would run
//   experiments --print-manifest > my.ini            # builtin as a seed
//
// Exit code: 0 every experiment passed, 1 any criterion tripped or a
// worker failed, 2 usage/manifest errors.  The summary fingerprint
// printed at the end hashes summary.json — same manifest + same seeds ⇒
// byte-identical summary, checkable from a shell.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"

#include "../cli_util.hpp"
#include "manifest.hpp"
#include "scenario.hpp"

using namespace rattrap;
using namespace rattrap::experiments;

namespace {

/// Curated built-in manifest: the CI quick subset covers every scenario
/// family (trace replay, flash crowd, fault storm, mobility handoff) in
/// a couple of minutes; full mode scales the same experiments up and
/// adds the non-quick sweeps.
constexpr const char* kBuiltinManifest = R"(# Built-in curated experiment matrix (tools/experiments --print-manifest).
# Key reference: EXPERIMENTS.md.  '|' separates grid-axis values.

[trace-replay-day]
scenario = trace-replay
quick = true
arrival = trace
trace_users = 16
trace_days = 1
trace_sessions_per_day = 24
trace_seed = 7
trace_scale = 0.01
devices = 50
requests = 400
full.requests = 4000
seed = 1|2
expect.accounting = identity
expect.max.invariant_violations = 0
expect.min.completed_share = 0.9

[trace-replay-file]
scenario = trace-replay
quick = true
arrival = trace
trace_file = tests/data/livelab_sample.csv
trace_scale = 0.02
trace_repeat = 1|2
devices = 40
requests = 300
seed = 3
expect.accounting = identity
expect.max.invariant_violations = 0
expect.min.completed_share = 0.9

[flash-crowd-diurnal]
scenario = flash-crowd
quick = true
arrival = poisson
profile = diurnal
profile_period = 120
profile_peak = 3
rate = 25
flash_at = 45
flash_duration = 10
flash_factor = 6
devices = 150
requests = 600
full.requests = 6000
admission = on
queue = 96
shed = 8
seed = 1|2
expect.accounting = identity
expect.max.invariant_violations = 0
expect.min.completed_share = 0.5

[fault-storm-rack]
scenario = fault-storm
quick = true
arrival = poisson
rate = 60
devices = 80
requests = 500
faults = net.drop:p=0.02
storm_crashes = 4
storm_at = 2
storm_spacing = 0.1
seed = 1|2
expect.accounting = identity
expect.min.faults_fired = 4
expect.max.invariant_violations = 0

[handoff-wifi-3g]
scenario = handoff
quick = true
arrival = poisson
link = lan
rate = 40
devices = 60
requests = 400
handoff = 3g:4:1.5
seed = 1|2
expect.accounting = identity
expect.min.handoffs = 1
expect.min.radio_slices = 2
expect.min.radio_transfer_ratio = 2
expect.min.sessions_resumed = 1
expect.max.invariant_violations = 0

[handoff-4g-bounce]
scenario = handoff
quick = true
arrival = poisson
link = wan
rate = 50
devices = 60
requests = 400
handoff = 4g:3:0.5;wan:6:0.5
seed = 1
expect.accounting = identity
expect.min.handoffs = 2
expect.min.radio_slices = 2
expect.min.sessions_resumed = 1
expect.max.invariant_violations = 0

[qos-fault-cross]
scenario = fault-storm
quick = true
arrival = mmpp
rate = 50
burst_factor = 6
devices = 120
requests = 500
admission = on
qos = on
mix = gold:interactive:3:0.3;silver:standard:2:0.4;bronze:batch:1:0.3
faults = net.drop:p=0.01
seed = 1|2
expect.accounting = identity
expect.max.invariant_violations = 0

[rac-adversary]
scenario = rac-adversary
quick = true
arrival = poisson
rate = 40
devices = 100
requests = 500
full.requests = 2000
admission = on
qos = on
mix = victim:interactive:2:0.3;prober:standard:1:0.2:probe;flooder:interactive:1:0.3:flood;thrasher:batch:1:0.2:thrash
rac_threshold = 4
rac_block_s = 4
rac_quota = 16
tenant_queue_quota = 32
seed = 1|2
expect.accounting = identity
expect.max.invariant_violations = 0
expect.min.rac.violations = 4
expect.min.rac.blocks = 1
expect.min.rac.unblocks = 1
expect.min.rac.denied.blocked = 1
expect.min.tenant.victim.completed = 50
expect.max.tenant.victim.p99_ms = 6000

[saturation-grid]
scenario = flash-crowd
quick = false
arrival = poisson
rate = 50|100|200
devices = 200
requests = 800
admission = on
shed = 8
seed = 1|2
expect.accounting = identity
expect.max.invariant_violations = 0
)";

void usage() {
  std::puts(
      "usage: experiments [options]\n"
      "  --manifest PATH  experiment manifest (default: built-in matrix)\n"
      "  --quick          run only quick=true experiments at quick scale\n"
      "  --experiment N   run only experiment N (repeatable)\n"
      "  --out DIR        artifact directory (default experiments-out)\n"
      "  --jobs N         parallel worker processes (default: cores, max 8)\n"
      "  --list           print the planned runs and exit\n"
      "  --print-manifest print the built-in manifest and exit\n"
      "  --help");
}

struct Options {
  std::string manifest_path = "@builtin";
  bool quick = false;
  std::vector<std::string> only;
  std::string out = "experiments-out";
  std::uint32_t jobs = 0;
  bool list = false;
  // Internal worker mode (spawned by the parent; not for direct use).
  bool child = false;
  std::string child_name;
  std::uint64_t child_point = 0;
  std::string child_dir;
};

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help") {
      usage();
      std::exit(0);
    } else if (arg == "--print-manifest") {
      std::fputs(kBuiltinManifest, stdout);
      std::exit(0);
    } else if (arg == "--manifest") {
      const char* v = next();
      if (v == nullptr) return false;
      options.manifest_path = v;
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--full") {
      options.quick = false;
    } else if (arg == "--experiment") {
      const char* v = next();
      if (v == nullptr) return false;
      options.only.emplace_back(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      options.out = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !cli::parse_u32(v, options.jobs) ||
          options.jobs == 0) {
        std::fprintf(stderr, "--jobs needs a positive integer\n");
        return false;
      }
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--child") {
      options.child = true;
    } else if (arg == "--name") {
      const char* v = next();
      if (v == nullptr) return false;
      options.child_name = v;
    } else if (arg == "--point") {
      const char* v = next();
      if (v == nullptr || !cli::parse_u64(v, options.child_point)) {
        return false;
      }
    } else if (arg == "--dir") {
      const char* v = next();
      if (v == nullptr) return false;
      options.child_dir = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return text;
}

bool mkdir_p(const std::string& path) {
  std::string partial;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    partial = path.substr(0, i);
    if (partial.empty() || partial == ".") continue;
    if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  if (!path.empty() && mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return false;
  }
  return true;
}

std::optional<Manifest> load_manifest(const std::string& path,
                                      std::string& error) {
  std::string text;
  if (path == "@builtin") {
    text = kBuiltinManifest;
  } else {
    const auto loaded = read_file(path);
    if (!loaded) {
      error = "cannot read manifest '" + path + "'";
      return std::nullopt;
    }
    text = *loaded;
  }
  return parse_manifest(text, error);
}

/// Worker body: resolve one grid point, execute it, write the per-run
/// artifacts.  Shared between the forked --child mode and the in-process
/// fallback when fork() is unavailable.
int run_child(const Manifest& manifest, const std::string& name,
              std::size_t point, bool quick, const std::string& dir) {
  const Experiment* experiment = manifest.find(name);
  std::string error;
  if (experiment == nullptr) {
    std::fprintf(stderr, "experiments: no experiment '%s'\n", name.c_str());
    return 3;
  }
  const auto spec = resolve_point(*experiment, point, quick, error);
  if (!spec) {
    std::fprintf(stderr, "experiments: %s: %s\n", name.c_str(),
                 error.c_str());
    return 3;
  }
  if (!mkdir_p(dir)) {
    std::fprintf(stderr, "experiments: cannot create %s\n", dir.c_str());
    return 3;
  }
  const RunResult result = execute_run(*spec);
  if (!result.ok) {
    (void)obs::write_text_file(dir + "/run.kv",
                               "error=" + result.error + "\n");
    std::fprintf(stderr, "experiments: %s\n", result.error.c_str());
    return 3;
  }
  if (!obs::write_text_file(dir + "/run.json", result.to_json(*spec)) ||
      !obs::write_text_file(dir + "/run.kv", result.to_kv())) {
    std::fprintf(stderr, "experiments: cannot write artifacts in %s\n",
                 dir.c_str());
    return 3;
  }
  return 0;
}

// -- Parent-side result handling ----------------------------------------

struct PlannedRun {
  std::string experiment;
  std::string scenario;
  std::size_t point = 0;
  RunSpec spec;
  std::string dir;
};

/// A finished run as the parent sees it: metric values kept as the
/// child's literal strings (emitted via json_number) so re-serializing
/// them into the summary is byte-stable.
struct RunOutcome {
  bool ran = false;
  std::string error;
  std::vector<std::pair<std::string, std::string>> metrics;
  std::vector<std::pair<std::string, std::string>> info;

  [[nodiscard]] const std::string* metric(std::string_view name) const {
    for (const auto& [key, value] : metrics) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

RunOutcome parse_kv(const std::string& text) {
  RunOutcome outcome;
  bool saw_ok = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    const std::string line = text.substr(start, i - start);
    start = i + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "ok" && value == "1") saw_ok = true;
    else if (key == "error") outcome.error = value;
    else if (key.rfind("m.", 0) == 0) {
      outcome.metrics.emplace_back(key.substr(2), value);
    } else if (key.rfind("i.", 0) == 0) {
      outcome.info.emplace_back(key.substr(2), value);
    }
  }
  outcome.ran = saw_ok && outcome.error.empty();
  return outcome;
}

struct CriterionResult {
  std::string check;   ///< "min.completed_share", "accounting", ...
  std::string bound;   ///< manifest value
  std::string value;   ///< observed metric literal ("" when missing)
  bool pass = false;
  std::string note;
};

std::vector<CriterionResult> evaluate_criteria(const RunSpec& spec,
                                               const RunOutcome& outcome) {
  std::vector<CriterionResult> results;
  for (const auto& [check, bound] : spec.expect) {
    CriterionResult r;
    r.check = check;
    r.bound = bound;
    if (!outcome.ran) {
      r.note = outcome.error.empty() ? "worker failed" : outcome.error;
      results.push_back(std::move(r));
      continue;
    }
    const auto compare = [&](const std::string& metric_name, bool is_min,
                             double bound_value) {
      const std::string* literal = outcome.metric(metric_name);
      if (literal == nullptr) {
        r.note = "no metric '" + metric_name + "'";
        return;
      }
      r.value = *literal;
      double observed = 0;
      if (!cli::parse_double(*literal, observed)) {
        r.note = "unparseable metric value";
        return;
      }
      r.pass = is_min ? observed >= bound_value : observed <= bound_value;
    };
    if (check == "accounting") {
      if (bound != "identity") {
        r.note = "expect.accounting only supports 'identity'";
      } else {
        compare("accounting_ok", /*is_min=*/true, 1.0);
      }
    } else if (check.rfind("min.", 0) == 0 || check.rfind("max.", 0) == 0) {
      double bound_value = 0;
      if (!cli::parse_double(bound, bound_value)) {
        r.note = "unparseable bound";
      } else {
        compare(check.substr(4), check.rfind("min.", 0) == 0, bound_value);
      }
    } else {
      r.note = "unknown criterion";
    }
    results.push_back(std::move(r));
  }
  return results;
}

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

/// CSV columns shared by runs.csv and summary.csv.
const std::vector<std::string>& csv_metrics() {
  static const std::vector<std::string> columns = {
      "offered",        "completed",
      "rejected",       "stranded",
      "resumed",        "goodput_per_s",
      "p50_ms",         "p95_ms",
      "p99_ms",         "invariant_violations",
      "faults_fired",   "handoffs",
      "radio_slices",   "radio_transfer_ratio",
      "env_count",      "rac.violations",
      "rac.blocks",     "rac.unblocks",
  };
  return columns;
}

std::string csv_header() {
  std::string line = "experiment,label";
  for (const std::string& column : csv_metrics()) line += "," + column;
  line += ",pass\n";
  return line;
}

std::string csv_row(const PlannedRun& run, const RunOutcome& outcome,
                    bool pass) {
  std::string line = run.experiment + "," + run.spec.label;
  for (const std::string& column : csv_metrics()) {
    const std::string* value = outcome.metric(column);
    line += ",";
    if (value != nullptr) line += *value;
  }
  line += pass ? ",1\n" : ",0\n";
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    usage();
    return 2;
  }

  std::string error;
  const auto manifest = load_manifest(options.manifest_path, error);
  if (!manifest) {
    std::fprintf(stderr, "experiments: %s\n", error.c_str());
    return 2;
  }

  if (options.child) {
    return run_child(*manifest, options.child_name,
                     static_cast<std::size_t>(options.child_point),
                     options.quick, options.child_dir);
  }

  // -- Plan --------------------------------------------------------------
  std::vector<PlannedRun> runs;
  std::vector<std::string> selected;  ///< experiment order for reporting
  for (const Experiment& experiment : manifest->experiments) {
    if (!options.only.empty()) {
      bool wanted = false;
      for (const std::string& name : options.only) {
        wanted = wanted || name == experiment.name;
      }
      if (!wanted) continue;
    }
    if (options.quick && !experiment.flag("quick", false)) continue;
    const std::size_t total = grid_size(experiment, error);
    if (total == 0) {
      std::fprintf(stderr, "experiments: [%s] %s\n",
                   experiment.name.c_str(), error.c_str());
      return 2;
    }
    selected.push_back(experiment.name);
    for (std::size_t point = 0; point < total; ++point) {
      const auto spec =
          resolve_point(experiment, point, options.quick, error);
      if (!spec) {
        std::fprintf(stderr, "experiments: [%s] %s\n",
                     experiment.name.c_str(), error.c_str());
        return 2;
      }
      PlannedRun run;
      run.experiment = experiment.name;
      const std::vector<std::string>* scenario = experiment.find("scenario");
      run.scenario = scenario == nullptr ? "" : scenario->front();
      run.point = point;
      run.spec = *spec;
      run.dir = options.out + "/" + experiment.name + "/" +
                sanitize_label(spec->label);
      runs.push_back(std::move(run));
    }
  }
  if (runs.empty()) {
    std::fprintf(stderr, "experiments: nothing selected to run\n");
    return 2;
  }

  if (options.list) {
    for (const PlannedRun& run : runs) {
      std::printf("%s/%s\n", run.experiment.c_str(), run.spec.label.c_str());
    }
    std::printf("%zu runs across %zu experiments\n", runs.size(),
                selected.size());
    return 0;
  }

  if (!mkdir_p(options.out)) {
    std::fprintf(stderr, "experiments: cannot create %s\n",
                 options.out.c_str());
    return 2;
  }

  std::uint32_t jobs = options.jobs;
  if (jobs == 0) {
    const long cores = sysconf(_SC_NPROCESSORS_ONLN);
    jobs = cores < 1 ? 1 : static_cast<std::uint32_t>(cores);
    jobs = std::min<std::uint32_t>(jobs, 8);
  }
  std::printf("experiments: %zu runs across %zu experiments, %u workers "
              "(%s mode)\n",
              runs.size(), selected.size(), jobs,
              options.quick ? "quick" : "full");

  // -- Execute (parallel fork/exec worker pool) --------------------------
  const std::string binary = self_exe(argv[0]);
  std::vector<int> exit_codes(runs.size(), -1);
  std::map<pid_t, std::size_t> running;
  std::size_t next = 0;
  std::size_t finished = 0;
  while (finished < runs.size()) {
    while (next < runs.size() && running.size() < jobs) {
      const PlannedRun& run = runs[next];
      const std::string point = std::to_string(run.point);
      const pid_t pid = fork();
      if (pid == 0) {
        const char* args[] = {binary.c_str(),
                              "--child",
                              "--manifest",
                              options.manifest_path.c_str(),
                              "--name",
                              run.experiment.c_str(),
                              "--point",
                              point.c_str(),
                              "--dir",
                              run.dir.c_str(),
                              options.quick ? "--quick" : "--full",
                              nullptr};
        execv(binary.c_str(), const_cast<char**>(args));
        _exit(127);
      }
      if (pid < 0) {
        // fork unavailable: degrade to running this point in-process.
        exit_codes[next] = run_child(*manifest, run.experiment, run.point,
                                     options.quick, run.dir);
        ++finished;
      } else {
        running[pid] = next;
      }
      ++next;
    }
    if (running.empty()) continue;
    int status = 0;
    const pid_t done = waitpid(-1, &status, 0);
    if (done < 0) continue;
    const auto it = running.find(done);
    if (it == running.end()) continue;
    const std::size_t index = it->second;
    running.erase(it);
    exit_codes[index] =
        WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
    ++finished;
    std::printf("  [%zu/%zu] %s/%s %s\n", finished, runs.size(),
                runs[index].experiment.c_str(),
                runs[index].spec.label.c_str(),
                exit_codes[index] == 0 ? "done" : "FAILED");
    std::fflush(stdout);
  }

  // -- Reduce (deterministic order: manifest order, then point order) ----
  std::string summary_json = "{\n  \"schema\": 1,\n  \"mode\": ";
  summary_json += options.quick ? "\"quick\"" : "\"full\"";
  summary_json += ",\n  \"experiments\": [";
  std::string summary_csv = csv_header();
  std::string summary_md =
      "| experiment | run | completed/offered | p99 ms | verdict |\n"
      "|---|---|---|---|---|\n";
  bool all_pass = true;
  std::size_t run_index = 0;
  bool first_experiment = true;
  for (const std::string& name : selected) {
    std::string exp_json;
    std::string exp_csv = csv_header();
    bool exp_pass = true;
    std::string scenario;
    bool first_run = true;
    for (; run_index < runs.size() && runs[run_index].experiment == name;
         ++run_index) {
      const PlannedRun& run = runs[run_index];
      scenario = run.scenario;
      RunOutcome outcome;
      const auto kv = read_file(run.dir + "/run.kv");
      if (kv) outcome = parse_kv(*kv);
      if (exit_codes[run_index] != 0 && outcome.error.empty()) {
        outcome.ran = false;
        outcome.error =
            "worker exited " + std::to_string(exit_codes[run_index]);
      }
      const std::vector<CriterionResult> criteria =
          evaluate_criteria(run.spec, outcome);
      bool run_pass = outcome.ran;
      for (const CriterionResult& c : criteria) {
        run_pass = run_pass && c.pass;
      }
      exp_pass = exp_pass && run_pass;

      exp_json += first_run ? "\n" : ",\n";
      first_run = false;
      exp_json += "        {\n          \"label\": " +
                  obs::json_quote(run.spec.label);
      exp_json += ",\n          \"ok\": ";
      exp_json += outcome.ran ? "true" : "false";
      if (!outcome.error.empty()) {
        exp_json +=
            ",\n          \"error\": " + obs::json_quote(outcome.error);
      }
      exp_json += ",\n          \"metrics\": {";
      bool first = true;
      for (const auto& [key, value] : outcome.metrics) {
        exp_json += first ? "\n" : ",\n";
        exp_json += "            " + obs::json_quote(key) + ": " + value;
        first = false;
      }
      exp_json += "\n          },\n          \"criteria\": [";
      first = true;
      for (const CriterionResult& c : criteria) {
        exp_json += first ? "\n" : ",\n";
        exp_json += "            {\"check\": " + obs::json_quote(c.check) +
                    ", \"bound\": " + obs::json_quote(c.bound) +
                    ", \"value\": " + obs::json_quote(c.value) +
                    ", \"pass\": " + (c.pass ? "true" : "false");
        if (!c.note.empty()) {
          exp_json += ", \"note\": " + obs::json_quote(c.note);
        }
        exp_json += "}";
        first = false;
      }
      exp_json += "\n          ],\n          \"pass\": ";
      exp_json += run_pass ? "true" : "false";
      exp_json += "\n        }";

      const std::string row = csv_row(run, outcome, run_pass);
      exp_csv += row;
      summary_csv += row;

      const std::string* completed = outcome.metric("completed");
      const std::string* offered = outcome.metric("offered");
      const std::string* p99 = outcome.metric("p99_ms");
      summary_md += "| " + name + " | " + run.spec.label + " | " +
                    (completed ? *completed : "-") + "/" +
                    (offered ? *offered : "-") + " | " +
                    (p99 ? *p99 : "-") + " | " +
                    (run_pass ? "pass" : "**FAIL**");
      if (!run_pass) {
        for (const CriterionResult& c : criteria) {
          if (c.pass) continue;
          summary_md += " " + c.check +
                        (c.note.empty() ? "=" + c.value : " (" + c.note + ")");
        }
      }
      summary_md += " |\n";
    }
    all_pass = all_pass && exp_pass;
    summary_json += first_experiment ? "\n" : ",\n";
    first_experiment = false;
    summary_json += "    {\n      \"name\": " + obs::json_quote(name);
    summary_json +=
        ",\n      \"scenario\": " + obs::json_quote(scenario);
    summary_json += ",\n      \"runs\": [" + exp_json + "\n      ]";
    summary_json += ",\n      \"pass\": ";
    summary_json += exp_pass ? "true" : "false";
    summary_json += "\n    }";
    (void)obs::write_text_file(options.out + "/" + name + "/runs.csv",
                               exp_csv);
    std::printf("%s %s\n", exp_pass ? "PASS" : "FAIL", name.c_str());
  }
  summary_json += "\n  ],\n  \"pass\": ";
  summary_json += all_pass ? "true" : "false";
  summary_json += "\n}\n";

  const std::uint64_t print = fingerprint64(summary_json);
  summary_md += all_pass ? "\nAll experiments passed.\n"
                         : "\nSome experiments FAILED.\n";
  if (!obs::write_text_file(options.out + "/summary.json", summary_json) ||
      !obs::write_text_file(options.out + "/summary.csv", summary_csv) ||
      !obs::write_text_file(options.out + "/summary.md", summary_md)) {
    std::fprintf(stderr, "experiments: cannot write summary artifacts\n");
    return 2;
  }
  std::printf("summary_fingerprint=%016llx\n",
              static_cast<unsigned long long>(print));
  std::printf("%s\n", all_pass ? "ALL EXPERIMENTS PASSED"
                               : "EXPERIMENT FAILURES");
  return all_pass ? 0 : 1;
}
