// fault_sweep — seed-sweep driver for the fault-injection harness.
//
// Runs N seeds × M fault plans against the full Rattrap platform with the
// cross-component invariant checker armed, and reports the first invariant
// violation together with the exact (seed, plan) pair that reproduces it:
//
//   fault_sweep                         # default 10 seeds × 3 plans
//   fault_sweep --seeds 50 --count 60   # bigger sweep
//   fault_sweep --plan "net.drop:p=0.2;container.crash:p=0.1"
//   fault_sweep --no-redispatch         # recovery off: violations expected
//
// Exit code 0: every run completed with zero invariant violations.
// Exit code 1: at least one violation (the repro line is printed).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "workloads/generator.hpp"

using namespace rattrap;

namespace {

void usage() {
  std::puts(
      "usage: fault_sweep [options]\n"
      "  --seeds N        seeds to sweep (default 10)\n"
      "  --first-seed S   first seed of the sweep (default 1)\n"
      "  --count N        requests per run (default 40)\n"
      "  --devices N      client devices (default 6)\n"
      "  --plan SPEC      sweep only this fault plan (repeatable)\n"
      "  --no-redispatch  disable crash recovery (violations expected)\n"
      "  --no-invariants  run faults without the invariant harness\n"
      "  --verbose        per-run fault/outcome counters\n"
      "  --help");
}

struct Options {
  std::uint64_t seeds = 10;
  std::uint64_t first_seed = 1;
  std::size_t count = 40;
  std::uint32_t devices = 6;
  std::vector<std::string> plans;
  bool redispatch = true;
  bool invariants = true;
  bool verbose = false;
};

// The three default plans cover every fault class the injector knows:
// network misbehavior, storage-layer failures, and environment death.
const char* const kDefaultPlans[] = {
    "net.drop:p=0.08;net.corrupt:p=0.05;net.delay:p=0.1,delay_ms=400",
    "tmpfs.write_fail:p=0.15;disk.write_fail:p=0.1;cache.evict:p=0.2",
    "container.crash:p=0.06;container.oom:p=0.04;binder.fail:p=0.05;"
    "devns.teardown:p=0.1",
};

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help") {
      usage();
      std::exit(0);
    } else if (arg == "--no-redispatch") {
      options.redispatch = false;
    } else if (arg == "--no-invariants") {
      options.invariants = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      options.seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--first-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options.first_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return false;
      options.count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--devices") {
      const char* v = next();
      if (v == nullptr) return false;
      options.devices =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--plan") {
      const char* v = next();
      if (v == nullptr) return false;
      options.plans.emplace_back(v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  if (options.seeds == 0 || options.count == 0) {
    std::fprintf(stderr, "nothing to sweep: --seeds and --count must be > 0\n");
    return false;
  }
  if (options.plans.empty()) {
    for (const char* plan : kDefaultPlans) options.plans.emplace_back(plan);
  }
  return true;
}

struct RunResult {
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t stranded = 0;
  std::size_t recovered = 0;
  std::uint64_t faults_fired = 0;
  std::uint64_t violations = 0;
  std::string first_violation;
};

RunResult run_once(const Options& options, const sim::FaultPlan& plan,
                   std::uint64_t seed) {
  core::PlatformConfig config = core::make_config(
      core::PlatformKind::kRattrap, net::lan_wifi(), seed);
  config.fault_plan = plan;
  config.check_invariants = options.invariants;
  config.crash_recovery = options.redispatch;
  core::Platform platform(std::move(config));

  workloads::StreamConfig stream;
  stream.count = options.count;
  stream.devices = options.devices;
  stream.mean_gap = 2 * sim::kSecond;
  stream.seed = seed;
  const auto outcomes = platform.run(workloads::make_stream(stream));

  RunResult result;
  for (const auto& outcome : outcomes) {
    if (outcome.rejected) {
      ++result.rejected;
      if (outcome.stranded) ++result.stranded;
    } else {
      ++result.completed;
      if (outcome.recovered) ++result.recovered;
    }
  }
  result.faults_fired = platform.fault_injector()->total_fired();
  result.violations = platform.invariants().total_violations();
  if (const auto* first = platform.invariants().first_violation()) {
    result.first_violation = first->name + " at " +
                             std::to_string(first->when) + "us: " +
                             first->detail;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    usage();
    return 2;
  }

  std::vector<sim::FaultPlan> plans;
  for (const auto& spec : options.plans) {
    auto plan = sim::FaultPlan::parse(spec);
    if (!plan.has_value()) {
      std::fprintf(stderr, "malformed fault plan: %s\n", spec.c_str());
      return 2;
    }
    plans.push_back(std::move(*plan));
  }

  std::printf("fault sweep: %llu seeds x %zu plans, %zu requests each%s\n",
              static_cast<unsigned long long>(options.seeds), plans.size(),
              options.count, options.redispatch ? "" : " (recovery OFF)");

  std::uint64_t total_runs = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t violating_runs = 0;
  std::string first_repro;

  for (std::size_t p = 0; p < plans.size(); ++p) {
    for (std::uint64_t seed = options.first_seed;
         seed < options.first_seed + options.seeds; ++seed) {
      const RunResult result = run_once(options, plans[p], seed);
      ++total_runs;
      total_faults += result.faults_fired;
      if (options.verbose) {
        std::printf(
            "  plan %zu seed %llu: %zu ok (%zu recovered), %zu rejected "
            "(%zu stranded), %llu faults, %llu violations\n",
            p, static_cast<unsigned long long>(seed), result.completed,
            result.recovered, result.rejected, result.stranded,
            static_cast<unsigned long long>(result.faults_fired),
            static_cast<unsigned long long>(result.violations));
      }
      if (result.violations > 0) {
        ++violating_runs;
        const std::string repro =
            "fault_sweep --seeds 1 --first-seed " + std::to_string(seed) +
            " --count " + std::to_string(options.count) + " --plan \"" +
            plans[p].spec() + "\"" +
            (options.redispatch ? "" : " --no-redispatch");
        if (first_repro.empty()) {
          first_repro = repro;
          std::printf("VIOLATION plan=%zu seed=%llu: %s\n", p,
                      static_cast<unsigned long long>(seed),
                      result.first_violation.c_str());
          std::printf("  repro: %s\n", repro.c_str());
        }
      }
    }
  }

  std::printf(
      "%llu runs, %llu faults injected, %llu runs with invariant "
      "violations\n",
      static_cast<unsigned long long>(total_runs),
      static_cast<unsigned long long>(total_faults),
      static_cast<unsigned long long>(violating_runs));
  return violating_runs == 0 ? 0 : 1;
}
