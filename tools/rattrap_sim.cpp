// rattrap_sim — command-line experiment driver.
//
// Runs one platform × workload × network experiment and prints per-request
// results (human table or CSV) plus a summary.  Everything the benches do
// is reachable from here, which makes the platform scriptable:
//
//   rattrap_sim --platform rattrap --workload ocr --count 20 --net LAN
//   rattrap_sim --platform vm --workload chess --csv > chess_vm.csv
//   rattrap_sim --workload virusscan --net 3G --adaptive
//   rattrap_sim --workload chess --trace accesses.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "obs/json.hpp"
#include "trace/livelab.hpp"
#include "workloads/generator.hpp"

using namespace rattrap;

namespace {

void usage() {
  std::puts(
      "usage: rattrap_sim [options]\n"
      "  --platform vm|plain|rattrap   cloud platform (default rattrap)\n"
      "  --workload ocr|chess|virusscan|linpack   (default linpack)\n"
      "  --count N        requests (default 20)\n"
      "  --devices N      client devices (default 5)\n"
      "  --gap SECONDS    mean inter-arrival (default 8)\n"
      "  --net LAN|WAN|4G|3G   network scenario (default LAN)\n"
      "  --seed S         stream seed (default 42)\n"
      "  --warm-pool N    pre-booted environments (default 0)\n"
      "  --adaptive       client-side offloading decision\n"
      "  --trace FILE     replay arrivals from a CSV trace (user,ts_us)\n"
      "  --csv            machine-readable per-request output\n"
      "  --faults SPEC    fault plan (docs/FAULTS.md spec string)\n"
      "  --metrics-out FILE   write platform metrics as JSON\n"
      "  --trace-out FILE     write session spans as Chrome trace JSON\n"
      "  --help");
}

struct Options {
  core::PlatformKind platform = core::PlatformKind::kRattrap;
  workloads::Kind workload = workloads::Kind::kLinpack;
  std::size_t count = 20;
  std::uint32_t devices = 5;
  double gap_s = 8.0;
  std::string net = "LAN";
  std::uint64_t seed = 42;
  std::uint32_t warm_pool = 0;
  bool adaptive = false;
  bool csv = false;
  std::string trace_file;
  std::string fault_spec;
  std::string metrics_out;
  std::string trace_out;
};

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help") {
      usage();
      std::exit(0);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--adaptive") {
      options.adaptive = true;
    } else if (arg == "--platform") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!std::strcmp(v, "vm")) {
        options.platform = core::PlatformKind::kVmCloud;
      } else if (!std::strcmp(v, "plain")) {
        options.platform = core::PlatformKind::kRattrapWithoutOpt;
      } else if (!std::strcmp(v, "rattrap")) {
        options.platform = core::PlatformKind::kRattrap;
      } else {
        return false;
      }
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!std::strcmp(v, "ocr")) {
        options.workload = workloads::Kind::kOcr;
      } else if (!std::strcmp(v, "chess")) {
        options.workload = workloads::Kind::kChess;
      } else if (!std::strcmp(v, "virusscan")) {
        options.workload = workloads::Kind::kVirusScan;
      } else if (!std::strcmp(v, "linpack")) {
        options.workload = workloads::Kind::kLinpack;
      } else {
        return false;
      }
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return false;
      options.count = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--devices") {
      const char* v = next();
      if (v == nullptr) return false;
      options.devices =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--gap") {
      const char* v = next();
      if (v == nullptr) return false;
      options.gap_s = std::strtod(v, nullptr);
    } else if (arg == "--net") {
      const char* v = next();
      if (v == nullptr) return false;
      options.net = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--warm-pool") {
      const char* v = next();
      if (v == nullptr) return false;
      options.warm_pool =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      options.trace_file = v;
    } else if (arg == "--faults") {
      const char* v = next();
      if (v == nullptr) return false;
      options.fault_spec = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      options.metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      options.trace_out = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return options.count > 0 && options.devices > 0;
}

net::LinkConfig link_for(const std::string& name) {
  for (const auto& link : net::all_scenarios()) {
    if (link.name == name) return link;
  }
  std::fprintf(stderr, "unknown network '%s', using LAN\n", name.c_str());
  return net::lan_wifi();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    usage();
    return 2;
  }

  std::vector<workloads::OffloadRequest> stream;
  if (!options.trace_file.empty()) {
    const auto trace = trace::load_csv(options.trace_file);
    if (!trace) {
      std::fprintf(stderr, "cannot load trace '%s'\n",
                   options.trace_file.c_str());
      return 1;
    }
    std::vector<std::pair<sim::SimTime, std::uint32_t>> events;
    for (const auto& event : *trace) {
      events.emplace_back(event.time, event.user % options.devices);
    }
    if (events.size() > options.count) events.resize(options.count);
    stream = workloads::make_stream_from_trace(
        options.workload, events,
        workloads::default_size_class(options.workload), options.seed);
  } else {
    workloads::StreamConfig config;
    config.kind = options.workload;
    config.count = options.count;
    config.devices = options.devices;
    config.mean_gap = sim::from_seconds(options.gap_s);
    config.size_class = workloads::default_size_class(options.workload);
    config.seed = options.seed;
    stream = workloads::make_stream(config);
  }

  core::PlatformConfig config =
      core::make_config(options.platform, link_for(options.net),
                        options.seed);
  config.warm_pool = options.warm_pool;
  config.adaptive_offloading = options.adaptive;
  if (!options.fault_spec.empty()) {
    const auto plan = sim::FaultPlan::parse(options.fault_spec);
    if (!plan) {
      std::fprintf(stderr, "malformed fault spec '%s'\n",
                   options.fault_spec.c_str());
      return 2;
    }
    config.fault_plan = *plan;
  }
  core::Platform platform(config);
  if (!options.trace_out.empty()) platform.trace().enable();
  const auto outcomes = platform.run(stream);

  if (!options.metrics_out.empty() &&
      !obs::write_text_file(options.metrics_out,
                            platform.metrics().to_json())) {
    std::fprintf(stderr, "cannot write metrics to '%s'\n",
                 options.metrics_out.c_str());
    return 1;
  }
  if (!options.trace_out.empty() &&
      !obs::write_text_file(options.trace_out,
                            platform.trace().to_chrome_json())) {
    std::fprintf(stderr, "cannot write trace to '%s'\n",
                 options.trace_out.c_str());
    return 1;
  }

  if (options.csv) {
    std::puts(
        "seq,device,arrival_ms,conn_ms,prep_ms,xfer_ms,comp_ms,"
        "response_ms,local_ms,speedup,up_bytes,down_bytes,cache_hit,"
        "rejected");
    for (const auto& o : outcomes) {
      std::printf(
          "%llu,%u,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%llu,%llu,%d,"
          "%d\n",
          static_cast<unsigned long long>(o.request.sequence),
          o.request.device_id, sim::to_millis(o.request.arrival),
          sim::to_millis(o.phases.network_connection),
          sim::to_millis(o.phases.runtime_preparation),
          sim::to_millis(o.phases.data_transfer),
          sim::to_millis(o.phases.computation), sim::to_millis(o.response),
          sim::to_millis(o.local_time), o.speedup,
          static_cast<unsigned long long>(o.traffic.total_up()),
          static_cast<unsigned long long>(o.traffic.total_down()),
          o.code_cache_hit ? 1 : 0, o.rejected ? 1 : 0);
    }
    return 0;
  }

  std::printf("%s | %s | %s | %zu requests from %u devices\n",
              core::to_string(options.platform),
              workloads::to_string(options.workload), options.net.c_str(),
              outcomes.size(), options.devices);
  std::printf("%4s %9s %9s %9s %9s %10s %8s\n", "req", "conn", "prep",
              "xfer", "comp", "response", "speedup");
  double speedup_sum = 0;
  std::size_t failures = 0, rejected = 0;
  for (const auto& o : outcomes) {
    std::printf("%4llu %8.1fms %8.1fms %8.1fms %8.1fms %9.1fms %7.2fx%s\n",
                static_cast<unsigned long long>(o.request.sequence + 1),
                sim::to_millis(o.phases.network_connection),
                sim::to_millis(o.phases.runtime_preparation),
                sim::to_millis(o.phases.data_transfer),
                sim::to_millis(o.phases.computation),
                sim::to_millis(o.response), o.speedup,
                o.rejected ? " REJECTED"
                           : (o.offloading_failure() ? " FAIL" : ""));
    speedup_sum += o.speedup;
    if (o.offloading_failure()) ++failures;
    if (o.rejected) ++rejected;
  }
  std::printf(
      "\nmean speedup %.2fx | failures %zu | rejected %zu\n\n",
      speedup_sum / static_cast<double>(outcomes.size()), failures,
      rejected);
  std::printf("%s", core::to_text(core::snapshot(platform)).c_str());
  return 0;
}
