// loadgen — cluster-scale load generation against one Rattrap platform.
//
// Synthesizes the traffic of very large device fleets (Poisson, bursty
// MMPP, or closed-loop think-time arrivals) and drives a platform with
// admission control through it, reporting the goodput/latency summary
// and a determinism fingerprint over the metrics registry:
//
//   loadgen --devices 50000 --arrival poisson --seed 1
//   loadgen --arrival mmpp --rate 200 --burst-factor 10 --requests 20000
//   loadgen --arrival closed --devices 2000 --think 0.5 --admission
//   loadgen --admission --rate 400 --shed 8 --json
//   loadgen --transport rpc --requests 10000   # same run over sockets
//
// Same flags + same seed ⇒ byte-identical metrics JSON (the fingerprint
// printed at the end makes that checkable from a shell).  --transport
// rpc drives the identical workload through an in-process rpc::Server
// over a real loopback socket; the printed fingerprint then hashes the
// server platform's registry fetched over the wire, and matches the sim
// transport's fingerprint exactly (docs/RPC.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/load_driver.hpp"
#include "core/platform.hpp"
#include "core/qos/qos.hpp"
#include "obs/metrics.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "trace/livelab.hpp"

#include "cli_util.hpp"

using namespace rattrap;

namespace {

void usage() {
  std::puts(
      "usage: loadgen [options]\n"
      "  --arrival P      poisson | mmpp | closed | trace (default poisson)\n"
      "  --devices N      fleet size (default 1000)\n"
      "  --requests N     total offered requests (default 1000)\n"
      "  --rate R         offered req/s, open loop (default 100)\n"
      "  --burst-factor F mmpp burst-state rate multiplier (default 8)\n"
      "  --profile P      flat | ramp | diurnal rate profile (default flat)\n"
      "  --profile-period S  profile cycle length, seconds (default 60)\n"
      "  --profile-peak F    profile peak rate multiplier (default 8)\n"
      "  --flash-at S     flash-crowd surge onset, seconds (default off)\n"
      "  --flash-duration S  flash-crowd surge length, seconds\n"
      "  --flash-factor F    flash-crowd rate multiplier (default 1)\n"
      "  --trace-file P   CSV trace to replay (--arrival trace)\n"
      "  --trace-scale F  trace time multiplier, >0 (default 1)\n"
      "  --trace-repeat N trace playback loops (default 1)\n"
      "  --think S        closed-loop mean think time, seconds (default 1)\n"
      "  --kind K         linpack | ocr | chess | virusscan (default linpack)\n"
      "  --seed S         master seed (default 1)\n"
      "  --admission      enable the admission front door\n"
      "  --queue N        accept-queue capacity (default 64)\n"
      "  --max-in-service N  concurrent dispatch bound (0 = 4x cores)\n"
      "  --tenant-rate R  per-app token-bucket rate, req/s (0 = off)\n"
      "  --shed U         utilization shed threshold (0 = off)\n"
      "  --qos            enable class/tenant QoS scheduling (implies\n"
      "                   --admission)\n"
      "  --mix T:C[:W[:S]]  add a traffic-mix slice: tenant T, class C\n"
      "                   (interactive|standard|batch), DRR weight W\n"
      "                   (default 1), share S (default 1). Repeatable.\n"
      "  --transport T    sim | rpc: in-process sim clock, or the same\n"
      "                   workload over a loopback rpc::Server (open-loop\n"
      "                   arrivals only)\n"
      "  --quantum N      DRR quantum (default 1)\n"
      "  --starvation-burst N  anti-starvation burst size (default 1)\n"
      "  --promote-every N     pops between promotions (default 8)\n"
      "  --json           print the full metrics JSON\n"
      "  --help");
}

struct Options {
  core::LoadDriverConfig driver;
  core::AdmissionConfig admission;
  std::string trace_file;  ///< CSV trace for --arrival trace
  bool json = false;
  bool rpc = false;  ///< --transport rpc: loopback sockets, same workload
};

/// "tenant:class[:weight[:share]]", e.g. "gold:interactive:3:0.25".
bool parse_mix(const char* v, sim::TrafficClassMix& mix) {
  std::vector<std::string> parts;
  std::string current;
  for (const char* p = v;; ++p) {
    if (*p == ':' || *p == '\0') {
      parts.push_back(current);
      current.clear();
      if (*p == '\0') break;
    } else {
      current.push_back(*p);
    }
  }
  if (parts.size() < 2 || parts.size() > 4) return false;
  mix.tenant = parts[0];
  const auto klass = core::qos::parse_class(parts[1]);
  if (!klass) return false;
  mix.priority = static_cast<std::uint8_t>(core::qos::class_index(*klass));
  if (parts.size() > 2 &&
      (!cli::parse_u32(parts[2], mix.weight) || mix.weight == 0)) {
    return false;
  }
  if (parts.size() > 3 &&
      (!cli::parse_double(parts[3], mix.share) || mix.share <= 0)) {
    return false;
  }
  return true;
}

bool parse_kind(const char* v, workloads::Kind& kind) {
  const std::string s = v;
  if (s == "linpack") kind = workloads::Kind::kLinpack;
  else if (s == "ocr") kind = workloads::Kind::kOcr;
  else if (s == "chess") kind = workloads::Kind::kChess;
  else if (s == "virusscan") kind = workloads::Kind::kVirusScan;
  else return false;
  return true;
}

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Strict numeric flag values: a malformed number is a usage error,
    // not a silent 0/default (cli_util.hpp).
    const auto num_double = [&](const char* flag, double& out) {
      const char* v = next();
      if (v == nullptr || !cli::parse_double(v, out)) {
        std::fprintf(stderr, "bad value for %s: %s\n", flag,
                     v == nullptr ? "(missing)" : v);
        return false;
      }
      return true;
    };
    const auto num_u32 = [&](const char* flag, std::uint32_t& out) {
      const char* v = next();
      if (v == nullptr || !cli::parse_u32(v, out)) {
        std::fprintf(stderr, "bad value for %s: %s\n", flag,
                     v == nullptr ? "(missing)" : v);
        return false;
      }
      return true;
    };
    const auto num_u64 = [&](const char* flag, std::uint64_t& out) {
      const char* v = next();
      if (v == nullptr || !cli::parse_u64(v, out)) {
        std::fprintf(stderr, "bad value for %s: %s\n", flag,
                     v == nullptr ? "(missing)" : v);
        return false;
      }
      return true;
    };
    if (arg == "--help") {
      usage();
      std::exit(0);
    } else if (arg == "--admission") {
      options.admission.enabled = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--arrival") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string s = v;
      if (s == "poisson") {
        options.driver.loadgen.arrival = sim::ArrivalProcess::kPoisson;
      } else if (s == "mmpp") {
        options.driver.loadgen.arrival = sim::ArrivalProcess::kMmpp;
      } else if (s == "closed" || s == "closed-loop") {
        options.driver.loadgen.arrival = sim::ArrivalProcess::kClosedLoop;
      } else if (s == "trace" || s == "trace-replay") {
        options.driver.loadgen.arrival = sim::ArrivalProcess::kTraceReplay;
      } else {
        std::fprintf(stderr, "unknown arrival process: %s\n", v);
        return false;
      }
    } else if (arg == "--devices") {
      if (!num_u32("--devices", options.driver.loadgen.devices)) return false;
    } else if (arg == "--requests") {
      std::uint64_t requests = 0;
      if (!num_u64("--requests", requests)) return false;
      options.driver.loadgen.requests = requests;
    } else if (arg == "--rate") {
      if (!num_double("--rate", options.driver.loadgen.rate_per_s)) {
        return false;
      }
    } else if (arg == "--burst-factor") {
      if (!num_double("--burst-factor", options.driver.loadgen.burst_factor)) {
        return false;
      }
    } else if (arg == "--profile") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string s = v;
      if (s == "flat") {
        options.driver.loadgen.profile = sim::RateProfile::kFlat;
      } else if (s == "ramp") {
        options.driver.loadgen.profile = sim::RateProfile::kRamp;
      } else if (s == "diurnal") {
        options.driver.loadgen.profile = sim::RateProfile::kDiurnal;
      } else {
        std::fprintf(stderr, "unknown rate profile: %s\n", v);
        return false;
      }
    } else if (arg == "--profile-period") {
      if (!num_double("--profile-period",
                      options.driver.loadgen.profile_period_s)) {
        return false;
      }
    } else if (arg == "--profile-peak") {
      if (!num_double("--profile-peak",
                      options.driver.loadgen.profile_peak_factor)) {
        return false;
      }
    } else if (arg == "--flash-at") {
      if (!num_double("--flash-at", options.driver.loadgen.flash_at_s)) {
        return false;
      }
    } else if (arg == "--flash-duration") {
      if (!num_double("--flash-duration",
                      options.driver.loadgen.flash_duration_s)) {
        return false;
      }
    } else if (arg == "--flash-factor") {
      if (!num_double("--flash-factor",
                      options.driver.loadgen.flash_factor)) {
        return false;
      }
    } else if (arg == "--trace-file") {
      const char* v = next();
      if (v == nullptr) return false;
      options.trace_file = v;
    } else if (arg == "--trace-scale") {
      if (!num_double("--trace-scale",
                      options.driver.loadgen.trace_time_scale) ||
          options.driver.loadgen.trace_time_scale <= 0) {
        std::fprintf(stderr, "--trace-scale must be > 0\n");
        return false;
      }
    } else if (arg == "--trace-repeat") {
      if (!num_u32("--trace-repeat", options.driver.loadgen.trace_repeat)) {
        return false;
      }
    } else if (arg == "--think") {
      if (!num_double("--think", options.driver.loadgen.think_time_s)) {
        return false;
      }
    } else if (arg == "--kind") {
      const char* v = next();
      if (v == nullptr || !parse_kind(v, options.driver.kind)) return false;
    } else if (arg == "--seed") {
      if (!num_u64("--seed", options.driver.loadgen.seed)) return false;
    } else if (arg == "--queue") {
      if (!num_u32("--queue", options.admission.queue_capacity)) return false;
    } else if (arg == "--max-in-service") {
      if (!num_u32("--max-in-service", options.admission.max_in_service)) {
        return false;
      }
    } else if (arg == "--tenant-rate") {
      if (!num_double("--tenant-rate", options.admission.tenant_rate_per_s)) {
        return false;
      }
    } else if (arg == "--shed") {
      if (!num_double("--shed", options.admission.shed_utilization)) {
        return false;
      }
    } else if (arg == "--qos") {
      options.admission.enabled = true;
      options.admission.qos.enabled = true;
    } else if (arg == "--mix") {
      const char* v = next();
      sim::TrafficClassMix mix;
      if (v == nullptr || !parse_mix(v, mix)) {
        std::fprintf(stderr, "bad --mix spec (tenant:class[:weight[:share]])\n");
        return false;
      }
      options.driver.loadgen.mix.push_back(std::move(mix));
    } else if (arg == "--transport") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string s = v;
      if (s == "sim") {
        options.rpc = false;
      } else if (s == "rpc") {
        options.rpc = true;
      } else {
        std::fprintf(stderr, "unknown transport: %s\n", v);
        return false;
      }
    } else if (arg == "--quantum") {
      if (!num_u32("--quantum", options.admission.qos.quantum)) return false;
    } else if (arg == "--starvation-burst") {
      if (!num_u32("--starvation-burst",
                   options.admission.qos.starvation_burst)) {
        return false;
      }
    } else if (arg == "--promote-every") {
      if (!num_u32("--promote-every", options.admission.qos.promote_every)) {
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  if (options.driver.loadgen.devices == 0 ||
      options.driver.loadgen.requests == 0) {
    std::fprintf(stderr, "--devices and --requests must be > 0\n");
    return false;
  }
  const bool trace_replay =
      options.driver.loadgen.arrival == sim::ArrivalProcess::kTraceReplay;
  if (trace_replay != !options.trace_file.empty()) {
    std::fprintf(stderr, trace_replay
                             ? "--arrival trace requires --trace-file\n"
                             : "--trace-file requires --arrival trace\n");
    return false;
  }
  if (options.rpc &&
      options.driver.loadgen.arrival == sim::ArrivalProcess::kClosedLoop) {
    // The closed loop feeds submissions from the platform's completion
    // observer — an in-process callback that cannot cross the wire.
    std::fprintf(stderr, "--transport rpc requires an open-loop arrival\n");
    return false;
  }
  return true;
}

/// FNV-1a over the deterministic metrics JSON: two runs printing the same
/// fingerprint produced byte-identical registries.
std::uint64_t fingerprint(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    usage();
    return 2;
  }
  if (!options.trace_file.empty()) {
    const auto loaded = trace::load_csv(options.trace_file);
    if (!loaded) {
      std::fprintf(stderr, "cannot load trace: %s\n",
                   options.trace_file.c_str());
      return 2;
    }
    options.driver.loadgen.trace.reserve(loaded->size());
    for (const trace::TraceEvent& event : *loaded) {
      options.driver.loadgen.trace.push_back(
          sim::TraceArrival{event.time, event.user});
    }
    if (options.driver.loadgen.trace.empty()) {
      std::fprintf(stderr, "trace has no events: %s\n",
                   options.trace_file.c_str());
      return 2;
    }
  }

  core::PlatformConfig config =
      core::make_config(core::PlatformKind::kRattrap);
  config.seed = options.driver.loadgen.seed;
  config.admission = options.admission;
  core::Platform platform(std::move(config));

  core::LoadSummary summary;
  std::string metrics_json;
  if (options.rpc) {
    // Same platform, same workload — but the Session API crosses a real
    // loopback socket through the async front door.  The metrics JSON is
    // fetched over the wire, so the fingerprint covers the server-side
    // registry (which the sim transport fingerprints directly).
    rpc::Server server(platform, rpc::ServerConfig{});
    if (!server.start()) {
      std::fprintf(stderr, "rpc: cannot start loopback server\n");
      return 1;
    }
    auto client = rpc::ClientTransport::connect("127.0.0.1", server.port());
    if (client == nullptr) {
      std::fprintf(stderr, "rpc: cannot connect to 127.0.0.1:%u\n",
                   server.port());
      return 1;
    }
    summary = core::run_load_transport(*client, options.driver);
    metrics_json = client->fetch_metrics();
    if (!client->ok() || metrics_json.empty()) {
      std::fprintf(stderr, "rpc: transport failed (%s)\n",
                   rpc::to_string(client->last_error()));
      return 1;
    }
    client.reset();
    server.stop();
  } else {
    summary = core::run_load(platform, options.driver);
    metrics_json = platform.metrics().to_json();
  }

  std::printf("arrival=%s profile=%s devices=%u requests=%zu seed=%llu\n",
              to_string(options.driver.loadgen.arrival),
              to_string(options.driver.loadgen.profile),
              options.driver.loadgen.devices, summary.offered,
              static_cast<unsigned long long>(options.driver.loadgen.seed));
  std::printf(
      "offered_rate=%.1f/s goodput=%.1f/s completed=%zu rejected=%zu "
      "stranded=%zu\n",
      summary.offered_rate_per_s, summary.goodput_per_s, summary.completed,
      summary.rejected, summary.stranded);
  for (const auto& [reason, count] : summary.rejects_by_reason) {
    std::printf("  rejected.%s=%zu\n", core::to_string(reason), count);
  }
  std::printf("latency_ms mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
              "queue_wait_mean=%.2f\n",
              summary.mean_ms, summary.p50_ms, summary.p95_ms,
              summary.p99_ms, summary.mean_queue_wait_ms);
  for (const core::qos::PriorityClass klass : core::qos::kAllClasses) {
    const core::ClassLoadStats& stats = summary.for_class(klass);
    if (stats.offered == 0) continue;
    std::printf(
        "class.%s offered=%zu completed=%zu rejected=%zu "
        "deadline_missed=%zu p50=%.1f p99=%.1f\n",
        core::qos::to_string(klass), stats.offered, stats.completed,
        stats.rejected, stats.deadline_missed, stats.p50_ms, stats.p99_ms);
  }
  if (!options.driver.loadgen.mix.empty()) {
    for (const auto& [tenant, completed] : summary.completed_by_tenant) {
      std::printf("tenant.%s completed=%zu\n", tenant.c_str(), completed);
    }
  }
  std::printf("virtual_duration=%.1fs envs=%zu\n", summary.duration_s,
              platform.env_count());

  // Request accounting must balance on every transport: what was offered
  // either completed or was rejected, per class and in total (the CI
  // rpc-loopback smoke greps for this line).
  bool identity = summary.offered == summary.completed + summary.rejected;
  std::size_t class_offered = 0;
  for (const core::qos::PriorityClass klass : core::qos::kAllClasses) {
    const core::ClassLoadStats& stats = summary.for_class(klass);
    identity = identity && stats.offered == stats.completed + stats.rejected;
    class_offered += stats.offered;
  }
  identity = identity && class_offered == summary.offered;
  std::printf("accounting_identity=%s\n", identity ? "ok" : "violated");

  // The fingerprint hashes the full registry export — qos.* series,
  // admission gauges, the lot — and the export leads with its schema
  // version, so metric renames change both the printed schema and the
  // fingerprint instead of silently matching a stale golden value.
  if (options.json) std::printf("%s\n", metrics_json.c_str());
  std::printf("metrics_schema=%d\n", obs::kMetricsSchemaVersion);
  std::printf("metrics_fingerprint=%016llx\n",
              static_cast<unsigned long long>(fingerprint(metrics_json)));
  return 0;
}
