// Strict value parsing shared by the CLI tools (loadgen, experiments).
//
// std::strtod-style parsing silently turns garbage into 0, which lets a
// typo'd flag run a whole sweep with default values — the failure mode
// the experiment harness exists to prevent.  These helpers accept a
// value only when the entire token parses and is in range; callers turn
// a false return into a usage error and a nonzero exit.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

namespace rattrap::cli {

/// Whole-token double ("1.5", "2e3"); rejects trailing garbage, empty
/// tokens, inf/nan spellings that strtod would accept.
inline bool parse_double(const char* token, double& out) {
  if (token == nullptr || *token == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token, &end);
  if (end == token || *end != '\0' || errno == ERANGE) return false;
  if (value != value) return false;  // NaN
  if (value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    return false;
  }
  out = value;
  return true;
}

/// Whole-token unsigned 64-bit decimal; rejects signs, trailing garbage.
inline bool parse_u64(const char* token, std::uint64_t& out) {
  if (token == nullptr || *token == '\0' || *token == '-' || *token == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token, &end, 10);
  if (end == token || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

inline bool parse_u32(const char* token, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64(token, wide) ||
      wide > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

inline bool parse_u64(const std::string& token, std::uint64_t& out) {
  return parse_u64(token.c_str(), out);
}
inline bool parse_u32(const std::string& token, std::uint32_t& out) {
  return parse_u32(token.c_str(), out);
}
inline bool parse_double(const std::string& token, double& out) {
  return parse_double(token.c_str(), out);
}

}  // namespace rattrap::cli
