file(REMOVE_RECURSE
  "CMakeFiles/bench_obs4_redundancy.dir/bench_obs4_redundancy.cpp.o"
  "CMakeFiles/bench_obs4_redundancy.dir/bench_obs4_redundancy.cpp.o.d"
  "bench_obs4_redundancy"
  "bench_obs4_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs4_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
