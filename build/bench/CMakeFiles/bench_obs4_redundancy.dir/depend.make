# Empty dependencies file for bench_obs4_redundancy.
# This may be replaced when dependencies are built.
