# Empty compiler generated dependencies file for bench_fig03_data_composition.
# This may be replaced when dependencies are built.
