# Empty dependencies file for bench_table1_runtime_overheads.
# This may be replaced when dependencies are built.
