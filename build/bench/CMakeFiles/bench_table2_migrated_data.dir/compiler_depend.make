# Empty compiler generated dependencies file for bench_table2_migrated_data.
# This may be replaced when dependencies are built.
