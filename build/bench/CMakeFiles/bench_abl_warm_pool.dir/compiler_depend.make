# Empty compiler generated dependencies file for bench_abl_warm_pool.
# This may be replaced when dependencies are built.
