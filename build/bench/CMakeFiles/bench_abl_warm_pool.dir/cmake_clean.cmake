file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_warm_pool.dir/bench_abl_warm_pool.cpp.o"
  "CMakeFiles/bench_abl_warm_pool.dir/bench_abl_warm_pool.cpp.o.d"
  "bench_abl_warm_pool"
  "bench_abl_warm_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_warm_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
