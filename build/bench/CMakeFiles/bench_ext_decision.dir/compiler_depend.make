# Empty compiler generated dependencies file for bench_ext_decision.
# This may be replaced when dependencies are built.
