file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_decision.dir/bench_ext_decision.cpp.o"
  "CMakeFiles/bench_ext_decision.dir/bench_ext_decision.cpp.o.d"
  "bench_ext_decision"
  "bench_ext_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
