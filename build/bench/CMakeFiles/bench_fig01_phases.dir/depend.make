# Empty dependencies file for bench_fig01_phases.
# This may be replaced when dependencies are built.
