file(REMOVE_RECURSE
  "CMakeFiles/rattrap_cli.dir/rattrap_sim.cpp.o"
  "CMakeFiles/rattrap_cli.dir/rattrap_sim.cpp.o.d"
  "rattrap"
  "rattrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
