# Empty dependencies file for rattrap_cli.
# This may be replaced when dependencies are built.
