file(REMOVE_RECURSE
  "librattrap_android.a"
)
