# Empty dependencies file for rattrap_android.
# This may be replaced when dependencies are built.
