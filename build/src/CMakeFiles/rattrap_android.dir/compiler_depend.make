# Empty compiler generated dependencies file for rattrap_android.
# This may be replaced when dependencies are built.
