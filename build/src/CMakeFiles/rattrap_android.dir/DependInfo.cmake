
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/app.cpp" "src/CMakeFiles/rattrap_android.dir/android/app.cpp.o" "gcc" "src/CMakeFiles/rattrap_android.dir/android/app.cpp.o.d"
  "/root/repo/src/android/boot.cpp" "src/CMakeFiles/rattrap_android.dir/android/boot.cpp.o" "gcc" "src/CMakeFiles/rattrap_android.dir/android/boot.cpp.o.d"
  "/root/repo/src/android/classloader.cpp" "src/CMakeFiles/rattrap_android.dir/android/classloader.cpp.o" "gcc" "src/CMakeFiles/rattrap_android.dir/android/classloader.cpp.o.d"
  "/root/repo/src/android/image_profile.cpp" "src/CMakeFiles/rattrap_android.dir/android/image_profile.cpp.o" "gcc" "src/CMakeFiles/rattrap_android.dir/android/image_profile.cpp.o.d"
  "/root/repo/src/android/init_rc.cpp" "src/CMakeFiles/rattrap_android.dir/android/init_rc.cpp.o" "gcc" "src/CMakeFiles/rattrap_android.dir/android/init_rc.cpp.o.d"
  "/root/repo/src/android/properties.cpp" "src/CMakeFiles/rattrap_android.dir/android/properties.cpp.o" "gcc" "src/CMakeFiles/rattrap_android.dir/android/properties.cpp.o.d"
  "/root/repo/src/android/services.cpp" "src/CMakeFiles/rattrap_android.dir/android/services.cpp.o" "gcc" "src/CMakeFiles/rattrap_android.dir/android/services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
