file(REMOVE_RECURSE
  "CMakeFiles/rattrap_android.dir/android/app.cpp.o"
  "CMakeFiles/rattrap_android.dir/android/app.cpp.o.d"
  "CMakeFiles/rattrap_android.dir/android/boot.cpp.o"
  "CMakeFiles/rattrap_android.dir/android/boot.cpp.o.d"
  "CMakeFiles/rattrap_android.dir/android/classloader.cpp.o"
  "CMakeFiles/rattrap_android.dir/android/classloader.cpp.o.d"
  "CMakeFiles/rattrap_android.dir/android/image_profile.cpp.o"
  "CMakeFiles/rattrap_android.dir/android/image_profile.cpp.o.d"
  "CMakeFiles/rattrap_android.dir/android/init_rc.cpp.o"
  "CMakeFiles/rattrap_android.dir/android/init_rc.cpp.o.d"
  "CMakeFiles/rattrap_android.dir/android/properties.cpp.o"
  "CMakeFiles/rattrap_android.dir/android/properties.cpp.o.d"
  "CMakeFiles/rattrap_android.dir/android/services.cpp.o"
  "CMakeFiles/rattrap_android.dir/android/services.cpp.o.d"
  "librattrap_android.a"
  "librattrap_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
