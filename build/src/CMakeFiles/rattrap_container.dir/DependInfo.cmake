
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/container/cgroup.cpp" "src/CMakeFiles/rattrap_container.dir/container/cgroup.cpp.o" "gcc" "src/CMakeFiles/rattrap_container.dir/container/cgroup.cpp.o.d"
  "/root/repo/src/container/container.cpp" "src/CMakeFiles/rattrap_container.dir/container/container.cpp.o" "gcc" "src/CMakeFiles/rattrap_container.dir/container/container.cpp.o.d"
  "/root/repo/src/container/namespaces.cpp" "src/CMakeFiles/rattrap_container.dir/container/namespaces.cpp.o" "gcc" "src/CMakeFiles/rattrap_container.dir/container/namespaces.cpp.o.d"
  "/root/repo/src/container/registry.cpp" "src/CMakeFiles/rattrap_container.dir/container/registry.cpp.o" "gcc" "src/CMakeFiles/rattrap_container.dir/container/registry.cpp.o.d"
  "/root/repo/src/container/runtime.cpp" "src/CMakeFiles/rattrap_container.dir/container/runtime.cpp.o" "gcc" "src/CMakeFiles/rattrap_container.dir/container/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
