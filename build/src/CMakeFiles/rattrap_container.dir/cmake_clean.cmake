file(REMOVE_RECURSE
  "CMakeFiles/rattrap_container.dir/container/cgroup.cpp.o"
  "CMakeFiles/rattrap_container.dir/container/cgroup.cpp.o.d"
  "CMakeFiles/rattrap_container.dir/container/container.cpp.o"
  "CMakeFiles/rattrap_container.dir/container/container.cpp.o.d"
  "CMakeFiles/rattrap_container.dir/container/namespaces.cpp.o"
  "CMakeFiles/rattrap_container.dir/container/namespaces.cpp.o.d"
  "CMakeFiles/rattrap_container.dir/container/registry.cpp.o"
  "CMakeFiles/rattrap_container.dir/container/registry.cpp.o.d"
  "CMakeFiles/rattrap_container.dir/container/runtime.cpp.o"
  "CMakeFiles/rattrap_container.dir/container/runtime.cpp.o.d"
  "librattrap_container.a"
  "librattrap_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
