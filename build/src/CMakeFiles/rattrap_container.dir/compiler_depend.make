# Empty compiler generated dependencies file for rattrap_container.
# This may be replaced when dependencies are built.
