file(REMOVE_RECURSE
  "librattrap_container.a"
)
