file(REMOVE_RECURSE
  "librattrap_device.a"
)
