
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/client.cpp" "src/CMakeFiles/rattrap_device.dir/device/client.cpp.o" "gcc" "src/CMakeFiles/rattrap_device.dir/device/client.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/CMakeFiles/rattrap_device.dir/device/device.cpp.o" "gcc" "src/CMakeFiles/rattrap_device.dir/device/device.cpp.o.d"
  "/root/repo/src/device/power.cpp" "src/CMakeFiles/rattrap_device.dir/device/power.cpp.o" "gcc" "src/CMakeFiles/rattrap_device.dir/device/power.cpp.o.d"
  "/root/repo/src/device/radio_state.cpp" "src/CMakeFiles/rattrap_device.dir/device/radio_state.cpp.o" "gcc" "src/CMakeFiles/rattrap_device.dir/device/radio_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
