file(REMOVE_RECURSE
  "CMakeFiles/rattrap_device.dir/device/client.cpp.o"
  "CMakeFiles/rattrap_device.dir/device/client.cpp.o.d"
  "CMakeFiles/rattrap_device.dir/device/device.cpp.o"
  "CMakeFiles/rattrap_device.dir/device/device.cpp.o.d"
  "CMakeFiles/rattrap_device.dir/device/power.cpp.o"
  "CMakeFiles/rattrap_device.dir/device/power.cpp.o.d"
  "CMakeFiles/rattrap_device.dir/device/radio_state.cpp.o"
  "CMakeFiles/rattrap_device.dir/device/radio_state.cpp.o.d"
  "librattrap_device.a"
  "librattrap_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
