# Empty compiler generated dependencies file for rattrap_device.
# This may be replaced when dependencies are built.
