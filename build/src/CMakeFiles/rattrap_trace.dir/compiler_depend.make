# Empty compiler generated dependencies file for rattrap_trace.
# This may be replaced when dependencies are built.
