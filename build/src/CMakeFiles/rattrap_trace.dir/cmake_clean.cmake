file(REMOVE_RECURSE
  "CMakeFiles/rattrap_trace.dir/trace/livelab.cpp.o"
  "CMakeFiles/rattrap_trace.dir/trace/livelab.cpp.o.d"
  "librattrap_trace.a"
  "librattrap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
