file(REMOVE_RECURSE
  "librattrap_trace.a"
)
