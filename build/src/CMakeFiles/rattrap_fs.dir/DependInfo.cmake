
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/disk.cpp" "src/CMakeFiles/rattrap_fs.dir/fs/disk.cpp.o" "gcc" "src/CMakeFiles/rattrap_fs.dir/fs/disk.cpp.o.d"
  "/root/repo/src/fs/image.cpp" "src/CMakeFiles/rattrap_fs.dir/fs/image.cpp.o" "gcc" "src/CMakeFiles/rattrap_fs.dir/fs/image.cpp.o.d"
  "/root/repo/src/fs/layer.cpp" "src/CMakeFiles/rattrap_fs.dir/fs/layer.cpp.o" "gcc" "src/CMakeFiles/rattrap_fs.dir/fs/layer.cpp.o.d"
  "/root/repo/src/fs/path.cpp" "src/CMakeFiles/rattrap_fs.dir/fs/path.cpp.o" "gcc" "src/CMakeFiles/rattrap_fs.dir/fs/path.cpp.o.d"
  "/root/repo/src/fs/tmpfs.cpp" "src/CMakeFiles/rattrap_fs.dir/fs/tmpfs.cpp.o" "gcc" "src/CMakeFiles/rattrap_fs.dir/fs/tmpfs.cpp.o.d"
  "/root/repo/src/fs/union_fs.cpp" "src/CMakeFiles/rattrap_fs.dir/fs/union_fs.cpp.o" "gcc" "src/CMakeFiles/rattrap_fs.dir/fs/union_fs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
