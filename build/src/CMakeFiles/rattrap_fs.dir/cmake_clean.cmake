file(REMOVE_RECURSE
  "CMakeFiles/rattrap_fs.dir/fs/disk.cpp.o"
  "CMakeFiles/rattrap_fs.dir/fs/disk.cpp.o.d"
  "CMakeFiles/rattrap_fs.dir/fs/image.cpp.o"
  "CMakeFiles/rattrap_fs.dir/fs/image.cpp.o.d"
  "CMakeFiles/rattrap_fs.dir/fs/layer.cpp.o"
  "CMakeFiles/rattrap_fs.dir/fs/layer.cpp.o.d"
  "CMakeFiles/rattrap_fs.dir/fs/path.cpp.o"
  "CMakeFiles/rattrap_fs.dir/fs/path.cpp.o.d"
  "CMakeFiles/rattrap_fs.dir/fs/tmpfs.cpp.o"
  "CMakeFiles/rattrap_fs.dir/fs/tmpfs.cpp.o.d"
  "CMakeFiles/rattrap_fs.dir/fs/union_fs.cpp.o"
  "CMakeFiles/rattrap_fs.dir/fs/union_fs.cpp.o.d"
  "librattrap_fs.a"
  "librattrap_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
