# Empty dependencies file for rattrap_fs.
# This may be replaced when dependencies are built.
