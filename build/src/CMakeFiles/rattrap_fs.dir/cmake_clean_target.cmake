file(REMOVE_RECURSE
  "librattrap_fs.a"
)
