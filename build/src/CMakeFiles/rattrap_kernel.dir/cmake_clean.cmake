file(REMOVE_RECURSE
  "CMakeFiles/rattrap_kernel.dir/kernel/alarm.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/alarm.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/android_container_driver.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/android_container_driver.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/ashmem.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/ashmem.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/binder.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/binder.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/device.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/device.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/devns.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/devns.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/kernel.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/kernel.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/logger.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/logger.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/module.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/module.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/sw_sync.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/sw_sync.cpp.o.d"
  "CMakeFiles/rattrap_kernel.dir/kernel/syscalls.cpp.o"
  "CMakeFiles/rattrap_kernel.dir/kernel/syscalls.cpp.o.d"
  "librattrap_kernel.a"
  "librattrap_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
