# Empty dependencies file for rattrap_kernel.
# This may be replaced when dependencies are built.
