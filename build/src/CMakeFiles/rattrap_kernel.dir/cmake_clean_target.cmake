file(REMOVE_RECURSE
  "librattrap_kernel.a"
)
