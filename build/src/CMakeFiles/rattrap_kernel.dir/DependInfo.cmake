
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/alarm.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/alarm.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/alarm.cpp.o.d"
  "/root/repo/src/kernel/android_container_driver.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/android_container_driver.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/android_container_driver.cpp.o.d"
  "/root/repo/src/kernel/ashmem.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/ashmem.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/ashmem.cpp.o.d"
  "/root/repo/src/kernel/binder.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/binder.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/binder.cpp.o.d"
  "/root/repo/src/kernel/device.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/device.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/device.cpp.o.d"
  "/root/repo/src/kernel/devns.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/devns.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/devns.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/kernel.cpp.o.d"
  "/root/repo/src/kernel/logger.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/logger.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/logger.cpp.o.d"
  "/root/repo/src/kernel/module.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/module.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/module.cpp.o.d"
  "/root/repo/src/kernel/sw_sync.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/sw_sync.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/sw_sync.cpp.o.d"
  "/root/repo/src/kernel/syscalls.cpp" "src/CMakeFiles/rattrap_kernel.dir/kernel/syscalls.cpp.o" "gcc" "src/CMakeFiles/rattrap_kernel.dir/kernel/syscalls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
