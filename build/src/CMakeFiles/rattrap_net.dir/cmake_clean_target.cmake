file(REMOVE_RECURSE
  "librattrap_net.a"
)
