# Empty compiler generated dependencies file for rattrap_net.
# This may be replaced when dependencies are built.
