
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/connection.cpp" "src/CMakeFiles/rattrap_net.dir/net/connection.cpp.o" "gcc" "src/CMakeFiles/rattrap_net.dir/net/connection.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/rattrap_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/rattrap_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/rattrap_net.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/rattrap_net.dir/net/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
