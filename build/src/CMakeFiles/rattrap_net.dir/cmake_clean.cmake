file(REMOVE_RECURSE
  "CMakeFiles/rattrap_net.dir/net/connection.cpp.o"
  "CMakeFiles/rattrap_net.dir/net/connection.cpp.o.d"
  "CMakeFiles/rattrap_net.dir/net/link.cpp.o"
  "CMakeFiles/rattrap_net.dir/net/link.cpp.o.d"
  "CMakeFiles/rattrap_net.dir/net/message.cpp.o"
  "CMakeFiles/rattrap_net.dir/net/message.cpp.o.d"
  "librattrap_net.a"
  "librattrap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
