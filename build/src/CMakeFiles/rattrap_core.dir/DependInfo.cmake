
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_control.cpp" "src/CMakeFiles/rattrap_core.dir/core/access_control.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/access_control.cpp.o.d"
  "/root/repo/src/core/cac.cpp" "src/CMakeFiles/rattrap_core.dir/core/cac.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/cac.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/CMakeFiles/rattrap_core.dir/core/calibration.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/calibration.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/CMakeFiles/rattrap_core.dir/core/cluster.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/cluster.cpp.o.d"
  "/root/repo/src/core/container_db.cpp" "src/CMakeFiles/rattrap_core.dir/core/container_db.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/container_db.cpp.o.d"
  "/root/repo/src/core/dispatcher.cpp" "src/CMakeFiles/rattrap_core.dir/core/dispatcher.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/dispatcher.cpp.o.d"
  "/root/repo/src/core/invariant.cpp" "src/CMakeFiles/rattrap_core.dir/core/invariant.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/invariant.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/rattrap_core.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/offload.cpp" "src/CMakeFiles/rattrap_core.dir/core/offload.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/offload.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/CMakeFiles/rattrap_core.dir/core/platform.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/platform.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/rattrap_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/CMakeFiles/rattrap_core.dir/core/server.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/server.cpp.o.d"
  "/root/repo/src/core/shared_layer.cpp" "src/CMakeFiles/rattrap_core.dir/core/shared_layer.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/shared_layer.cpp.o.d"
  "/root/repo/src/core/warehouse.cpp" "src/CMakeFiles/rattrap_core.dir/core/warehouse.cpp.o" "gcc" "src/CMakeFiles/rattrap_core.dir/core/warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
