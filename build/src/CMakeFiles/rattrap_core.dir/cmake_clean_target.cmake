file(REMOVE_RECURSE
  "librattrap_core.a"
)
