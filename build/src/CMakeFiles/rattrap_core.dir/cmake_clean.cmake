file(REMOVE_RECURSE
  "CMakeFiles/rattrap_core.dir/core/access_control.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/access_control.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/cac.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/cac.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/calibration.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/calibration.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/cluster.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/cluster.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/container_db.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/container_db.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/dispatcher.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/dispatcher.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/invariant.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/invariant.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/monitor.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/monitor.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/offload.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/offload.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/platform.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/platform.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/report.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/report.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/server.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/server.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/shared_layer.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/shared_layer.cpp.o.d"
  "CMakeFiles/rattrap_core.dir/core/warehouse.cpp.o"
  "CMakeFiles/rattrap_core.dir/core/warehouse.cpp.o.d"
  "librattrap_core.a"
  "librattrap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
