# Empty dependencies file for rattrap_core.
# This may be replaced when dependencies are built.
