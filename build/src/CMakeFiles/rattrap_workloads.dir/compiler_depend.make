# Empty compiler generated dependencies file for rattrap_workloads.
# This may be replaced when dependencies are built.
