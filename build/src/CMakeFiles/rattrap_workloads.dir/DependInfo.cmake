
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/chess.cpp" "src/CMakeFiles/rattrap_workloads.dir/workloads/chess.cpp.o" "gcc" "src/CMakeFiles/rattrap_workloads.dir/workloads/chess.cpp.o.d"
  "/root/repo/src/workloads/generator.cpp" "src/CMakeFiles/rattrap_workloads.dir/workloads/generator.cpp.o" "gcc" "src/CMakeFiles/rattrap_workloads.dir/workloads/generator.cpp.o.d"
  "/root/repo/src/workloads/linpack.cpp" "src/CMakeFiles/rattrap_workloads.dir/workloads/linpack.cpp.o" "gcc" "src/CMakeFiles/rattrap_workloads.dir/workloads/linpack.cpp.o.d"
  "/root/repo/src/workloads/ocr.cpp" "src/CMakeFiles/rattrap_workloads.dir/workloads/ocr.cpp.o" "gcc" "src/CMakeFiles/rattrap_workloads.dir/workloads/ocr.cpp.o.d"
  "/root/repo/src/workloads/virusscan.cpp" "src/CMakeFiles/rattrap_workloads.dir/workloads/virusscan.cpp.o" "gcc" "src/CMakeFiles/rattrap_workloads.dir/workloads/virusscan.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/rattrap_workloads.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/rattrap_workloads.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
