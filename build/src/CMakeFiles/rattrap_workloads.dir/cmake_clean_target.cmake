file(REMOVE_RECURSE
  "librattrap_workloads.a"
)
