file(REMOVE_RECURSE
  "CMakeFiles/rattrap_workloads.dir/workloads/chess.cpp.o"
  "CMakeFiles/rattrap_workloads.dir/workloads/chess.cpp.o.d"
  "CMakeFiles/rattrap_workloads.dir/workloads/generator.cpp.o"
  "CMakeFiles/rattrap_workloads.dir/workloads/generator.cpp.o.d"
  "CMakeFiles/rattrap_workloads.dir/workloads/linpack.cpp.o"
  "CMakeFiles/rattrap_workloads.dir/workloads/linpack.cpp.o.d"
  "CMakeFiles/rattrap_workloads.dir/workloads/ocr.cpp.o"
  "CMakeFiles/rattrap_workloads.dir/workloads/ocr.cpp.o.d"
  "CMakeFiles/rattrap_workloads.dir/workloads/virusscan.cpp.o"
  "CMakeFiles/rattrap_workloads.dir/workloads/virusscan.cpp.o.d"
  "CMakeFiles/rattrap_workloads.dir/workloads/workload.cpp.o"
  "CMakeFiles/rattrap_workloads.dir/workloads/workload.cpp.o.d"
  "librattrap_workloads.a"
  "librattrap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
