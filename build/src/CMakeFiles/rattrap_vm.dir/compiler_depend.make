# Empty compiler generated dependencies file for rattrap_vm.
# This may be replaced when dependencies are built.
