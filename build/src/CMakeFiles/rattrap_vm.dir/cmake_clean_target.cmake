file(REMOVE_RECURSE
  "librattrap_vm.a"
)
