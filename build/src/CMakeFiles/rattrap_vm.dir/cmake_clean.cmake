file(REMOVE_RECURSE
  "CMakeFiles/rattrap_vm.dir/vm/hypervisor.cpp.o"
  "CMakeFiles/rattrap_vm.dir/vm/hypervisor.cpp.o.d"
  "CMakeFiles/rattrap_vm.dir/vm/vm.cpp.o"
  "CMakeFiles/rattrap_vm.dir/vm/vm.cpp.o.d"
  "librattrap_vm.a"
  "librattrap_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
