file(REMOVE_RECURSE
  "librattrap_sim.a"
)
