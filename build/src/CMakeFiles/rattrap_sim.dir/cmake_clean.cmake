file(REMOVE_RECURSE
  "CMakeFiles/rattrap_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/rattrap_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/rattrap_sim.dir/sim/fault.cpp.o"
  "CMakeFiles/rattrap_sim.dir/sim/fault.cpp.o.d"
  "CMakeFiles/rattrap_sim.dir/sim/logging.cpp.o"
  "CMakeFiles/rattrap_sim.dir/sim/logging.cpp.o.d"
  "CMakeFiles/rattrap_sim.dir/sim/parallel.cpp.o"
  "CMakeFiles/rattrap_sim.dir/sim/parallel.cpp.o.d"
  "CMakeFiles/rattrap_sim.dir/sim/random.cpp.o"
  "CMakeFiles/rattrap_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/rattrap_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/rattrap_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/rattrap_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/rattrap_sim.dir/sim/stats.cpp.o.d"
  "librattrap_sim.a"
  "librattrap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rattrap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
