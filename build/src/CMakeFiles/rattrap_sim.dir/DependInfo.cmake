
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/rattrap_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/rattrap_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/CMakeFiles/rattrap_sim.dir/sim/fault.cpp.o" "gcc" "src/CMakeFiles/rattrap_sim.dir/sim/fault.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/rattrap_sim.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/rattrap_sim.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/parallel.cpp" "src/CMakeFiles/rattrap_sim.dir/sim/parallel.cpp.o" "gcc" "src/CMakeFiles/rattrap_sim.dir/sim/parallel.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/rattrap_sim.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/rattrap_sim.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rattrap_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rattrap_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/rattrap_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/rattrap_sim.dir/sim/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
