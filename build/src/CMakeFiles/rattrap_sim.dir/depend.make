# Empty dependencies file for rattrap_sim.
# This may be replaced when dependencies are built.
