# Empty dependencies file for photo_batch.
# This may be replaced when dependencies are built.
