file(REMOVE_RECURSE
  "CMakeFiles/photo_batch.dir/photo_batch.cpp.o"
  "CMakeFiles/photo_batch.dir/photo_batch.cpp.o.d"
  "photo_batch"
  "photo_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
