file(REMOVE_RECURSE
  "CMakeFiles/game_assistant.dir/game_assistant.cpp.o"
  "CMakeFiles/game_assistant.dir/game_assistant.cpp.o.d"
  "game_assistant"
  "game_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
