# Empty compiler generated dependencies file for game_assistant.
# This may be replaced when dependencies are built.
