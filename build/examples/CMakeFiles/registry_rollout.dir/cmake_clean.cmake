file(REMOVE_RECURSE
  "CMakeFiles/registry_rollout.dir/registry_rollout.cpp.o"
  "CMakeFiles/registry_rollout.dir/registry_rollout.cpp.o.d"
  "registry_rollout"
  "registry_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registry_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
