# Empty dependencies file for registry_rollout.
# This may be replaced when dependencies are built.
