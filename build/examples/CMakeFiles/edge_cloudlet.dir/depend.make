# Empty dependencies file for edge_cloudlet.
# This may be replaced when dependencies are built.
