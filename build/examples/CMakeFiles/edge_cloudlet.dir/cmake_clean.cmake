file(REMOVE_RECURSE
  "CMakeFiles/edge_cloudlet.dir/edge_cloudlet.cpp.o"
  "CMakeFiles/edge_cloudlet.dir/edge_cloudlet.cpp.o.d"
  "edge_cloudlet"
  "edge_cloudlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cloudlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
