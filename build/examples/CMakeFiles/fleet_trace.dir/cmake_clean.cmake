file(REMOVE_RECURSE
  "CMakeFiles/fleet_trace.dir/fleet_trace.cpp.o"
  "CMakeFiles/fleet_trace.dir/fleet_trace.cpp.o.d"
  "fleet_trace"
  "fleet_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
