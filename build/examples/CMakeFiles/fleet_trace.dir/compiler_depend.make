# Empty compiler generated dependencies file for fleet_trace.
# This may be replaced when dependencies are built.
