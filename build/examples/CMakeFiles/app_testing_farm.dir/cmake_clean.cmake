file(REMOVE_RECURSE
  "CMakeFiles/app_testing_farm.dir/app_testing_farm.cpp.o"
  "CMakeFiles/app_testing_farm.dir/app_testing_farm.cpp.o.d"
  "app_testing_farm"
  "app_testing_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_testing_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
