# Empty compiler generated dependencies file for app_testing_farm.
# This may be replaced when dependencies are built.
