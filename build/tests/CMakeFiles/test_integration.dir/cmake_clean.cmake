file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_ablations.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_ablations.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_calibration_targets.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_calibration_targets.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fault_injection.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fault_injection.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_matrix.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_matrix.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_platform.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_platform.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_robustness.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_robustness.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_security.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_security.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_warm_pool.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_warm_pool.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
