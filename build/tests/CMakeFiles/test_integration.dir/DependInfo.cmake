
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_ablations.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_ablations.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_ablations.cpp.o.d"
  "/root/repo/tests/integration/test_calibration_targets.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_calibration_targets.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_calibration_targets.cpp.o.d"
  "/root/repo/tests/integration/test_fault_injection.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_fault_injection.cpp.o.d"
  "/root/repo/tests/integration/test_matrix.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_matrix.cpp.o.d"
  "/root/repo/tests/integration/test_platform.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_platform.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_platform.cpp.o.d"
  "/root/repo/tests/integration/test_robustness.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_robustness.cpp.o.d"
  "/root/repo/tests/integration/test_security.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_security.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_security.cpp.o.d"
  "/root/repo/tests/integration/test_warm_pool.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_warm_pool.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_warm_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
