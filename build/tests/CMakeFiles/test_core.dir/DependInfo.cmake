
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_access_control.cpp" "tests/CMakeFiles/test_core.dir/core/test_access_control.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_access_control.cpp.o.d"
  "/root/repo/tests/core/test_cac.cpp" "tests/CMakeFiles/test_core.dir/core/test_cac.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cac.cpp.o.d"
  "/root/repo/tests/core/test_cluster.cpp" "tests/CMakeFiles/test_core.dir/core/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cluster.cpp.o.d"
  "/root/repo/tests/core/test_container_db.cpp" "tests/CMakeFiles/test_core.dir/core/test_container_db.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_container_db.cpp.o.d"
  "/root/repo/tests/core/test_dispatcher.cpp" "tests/CMakeFiles/test_core.dir/core/test_dispatcher.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dispatcher.cpp.o.d"
  "/root/repo/tests/core/test_monitor.cpp" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "/root/repo/tests/core/test_offload.cpp" "tests/CMakeFiles/test_core.dir/core/test_offload.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_offload.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_server.cpp" "tests/CMakeFiles/test_core.dir/core/test_server.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_server.cpp.o.d"
  "/root/repo/tests/core/test_shared_layer.cpp" "tests/CMakeFiles/test_core.dir/core/test_shared_layer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_shared_layer.cpp.o.d"
  "/root/repo/tests/core/test_warehouse.cpp" "tests/CMakeFiles/test_core.dir/core/test_warehouse.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
