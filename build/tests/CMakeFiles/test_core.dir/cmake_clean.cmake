file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_access_control.cpp.o"
  "CMakeFiles/test_core.dir/core/test_access_control.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cac.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cac.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cluster.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cluster.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_container_db.cpp.o"
  "CMakeFiles/test_core.dir/core/test_container_db.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dispatcher.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dispatcher.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_offload.cpp.o"
  "CMakeFiles/test_core.dir/core/test_offload.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_server.cpp.o"
  "CMakeFiles/test_core.dir/core/test_server.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_shared_layer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_shared_layer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_warehouse.cpp.o"
  "CMakeFiles/test_core.dir/core/test_warehouse.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
