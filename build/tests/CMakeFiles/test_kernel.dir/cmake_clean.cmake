file(REMOVE_RECURSE
  "CMakeFiles/test_kernel.dir/kernel/test_acd.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_acd.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_alarm.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_alarm.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_ashmem.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_ashmem.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_binder.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_binder.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_devns.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_devns.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_kernel.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_kernel.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_logger.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_logger.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_sw_sync.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_sw_sync.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_syscalls.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/test_syscalls.cpp.o.d"
  "test_kernel"
  "test_kernel.pdb"
  "test_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
