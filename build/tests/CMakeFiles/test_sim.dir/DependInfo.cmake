
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_fault_determinism.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_fault_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_fault_determinism.cpp.o.d"
  "/root/repo/tests/sim/test_parallel.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o.d"
  "/root/repo/tests/sim/test_random.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_random.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_random.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
