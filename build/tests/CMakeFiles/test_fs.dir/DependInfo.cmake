
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fs/test_disk.cpp" "tests/CMakeFiles/test_fs.dir/fs/test_disk.cpp.o" "gcc" "tests/CMakeFiles/test_fs.dir/fs/test_disk.cpp.o.d"
  "/root/repo/tests/fs/test_image.cpp" "tests/CMakeFiles/test_fs.dir/fs/test_image.cpp.o" "gcc" "tests/CMakeFiles/test_fs.dir/fs/test_image.cpp.o.d"
  "/root/repo/tests/fs/test_layer.cpp" "tests/CMakeFiles/test_fs.dir/fs/test_layer.cpp.o" "gcc" "tests/CMakeFiles/test_fs.dir/fs/test_layer.cpp.o.d"
  "/root/repo/tests/fs/test_path.cpp" "tests/CMakeFiles/test_fs.dir/fs/test_path.cpp.o" "gcc" "tests/CMakeFiles/test_fs.dir/fs/test_path.cpp.o.d"
  "/root/repo/tests/fs/test_tmpfs.cpp" "tests/CMakeFiles/test_fs.dir/fs/test_tmpfs.cpp.o" "gcc" "tests/CMakeFiles/test_fs.dir/fs/test_tmpfs.cpp.o.d"
  "/root/repo/tests/fs/test_union_fs.cpp" "tests/CMakeFiles/test_fs.dir/fs/test_union_fs.cpp.o" "gcc" "tests/CMakeFiles/test_fs.dir/fs/test_union_fs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
