file(REMOVE_RECURSE
  "CMakeFiles/test_fs.dir/fs/test_disk.cpp.o"
  "CMakeFiles/test_fs.dir/fs/test_disk.cpp.o.d"
  "CMakeFiles/test_fs.dir/fs/test_image.cpp.o"
  "CMakeFiles/test_fs.dir/fs/test_image.cpp.o.d"
  "CMakeFiles/test_fs.dir/fs/test_layer.cpp.o"
  "CMakeFiles/test_fs.dir/fs/test_layer.cpp.o.d"
  "CMakeFiles/test_fs.dir/fs/test_path.cpp.o"
  "CMakeFiles/test_fs.dir/fs/test_path.cpp.o.d"
  "CMakeFiles/test_fs.dir/fs/test_tmpfs.cpp.o"
  "CMakeFiles/test_fs.dir/fs/test_tmpfs.cpp.o.d"
  "CMakeFiles/test_fs.dir/fs/test_union_fs.cpp.o"
  "CMakeFiles/test_fs.dir/fs/test_union_fs.cpp.o.d"
  "test_fs"
  "test_fs.pdb"
  "test_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
