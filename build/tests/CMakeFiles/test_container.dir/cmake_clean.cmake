file(REMOVE_RECURSE
  "CMakeFiles/test_container.dir/container/test_cgroup.cpp.o"
  "CMakeFiles/test_container.dir/container/test_cgroup.cpp.o.d"
  "CMakeFiles/test_container.dir/container/test_container.cpp.o"
  "CMakeFiles/test_container.dir/container/test_container.cpp.o.d"
  "CMakeFiles/test_container.dir/container/test_namespaces.cpp.o"
  "CMakeFiles/test_container.dir/container/test_namespaces.cpp.o.d"
  "CMakeFiles/test_container.dir/container/test_registry.cpp.o"
  "CMakeFiles/test_container.dir/container/test_registry.cpp.o.d"
  "CMakeFiles/test_container.dir/container/test_runtime.cpp.o"
  "CMakeFiles/test_container.dir/container/test_runtime.cpp.o.d"
  "test_container"
  "test_container.pdb"
  "test_container[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
