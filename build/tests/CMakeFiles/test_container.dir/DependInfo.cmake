
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/container/test_cgroup.cpp" "tests/CMakeFiles/test_container.dir/container/test_cgroup.cpp.o" "gcc" "tests/CMakeFiles/test_container.dir/container/test_cgroup.cpp.o.d"
  "/root/repo/tests/container/test_container.cpp" "tests/CMakeFiles/test_container.dir/container/test_container.cpp.o" "gcc" "tests/CMakeFiles/test_container.dir/container/test_container.cpp.o.d"
  "/root/repo/tests/container/test_namespaces.cpp" "tests/CMakeFiles/test_container.dir/container/test_namespaces.cpp.o" "gcc" "tests/CMakeFiles/test_container.dir/container/test_namespaces.cpp.o.d"
  "/root/repo/tests/container/test_registry.cpp" "tests/CMakeFiles/test_container.dir/container/test_registry.cpp.o" "gcc" "tests/CMakeFiles/test_container.dir/container/test_registry.cpp.o.d"
  "/root/repo/tests/container/test_runtime.cpp" "tests/CMakeFiles/test_container.dir/container/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_container.dir/container/test_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
