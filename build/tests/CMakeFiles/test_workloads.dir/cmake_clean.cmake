file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/workloads/test_chess.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_chess.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_generator.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_generator.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_linpack.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_linpack.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_ocr.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_ocr.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_virusscan.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_virusscan.cpp.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
