file(REMOVE_RECURSE
  "CMakeFiles/test_android.dir/android/test_app.cpp.o"
  "CMakeFiles/test_android.dir/android/test_app.cpp.o.d"
  "CMakeFiles/test_android.dir/android/test_boot.cpp.o"
  "CMakeFiles/test_android.dir/android/test_boot.cpp.o.d"
  "CMakeFiles/test_android.dir/android/test_classloader.cpp.o"
  "CMakeFiles/test_android.dir/android/test_classloader.cpp.o.d"
  "CMakeFiles/test_android.dir/android/test_image_profile.cpp.o"
  "CMakeFiles/test_android.dir/android/test_image_profile.cpp.o.d"
  "CMakeFiles/test_android.dir/android/test_init_rc.cpp.o"
  "CMakeFiles/test_android.dir/android/test_init_rc.cpp.o.d"
  "CMakeFiles/test_android.dir/android/test_properties.cpp.o"
  "CMakeFiles/test_android.dir/android/test_properties.cpp.o.d"
  "CMakeFiles/test_android.dir/android/test_services.cpp.o"
  "CMakeFiles/test_android.dir/android/test_services.cpp.o.d"
  "test_android"
  "test_android.pdb"
  "test_android[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
