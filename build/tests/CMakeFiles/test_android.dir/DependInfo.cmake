
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/android/test_app.cpp" "tests/CMakeFiles/test_android.dir/android/test_app.cpp.o" "gcc" "tests/CMakeFiles/test_android.dir/android/test_app.cpp.o.d"
  "/root/repo/tests/android/test_boot.cpp" "tests/CMakeFiles/test_android.dir/android/test_boot.cpp.o" "gcc" "tests/CMakeFiles/test_android.dir/android/test_boot.cpp.o.d"
  "/root/repo/tests/android/test_classloader.cpp" "tests/CMakeFiles/test_android.dir/android/test_classloader.cpp.o" "gcc" "tests/CMakeFiles/test_android.dir/android/test_classloader.cpp.o.d"
  "/root/repo/tests/android/test_image_profile.cpp" "tests/CMakeFiles/test_android.dir/android/test_image_profile.cpp.o" "gcc" "tests/CMakeFiles/test_android.dir/android/test_image_profile.cpp.o.d"
  "/root/repo/tests/android/test_init_rc.cpp" "tests/CMakeFiles/test_android.dir/android/test_init_rc.cpp.o" "gcc" "tests/CMakeFiles/test_android.dir/android/test_init_rc.cpp.o.d"
  "/root/repo/tests/android/test_properties.cpp" "tests/CMakeFiles/test_android.dir/android/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_android.dir/android/test_properties.cpp.o.d"
  "/root/repo/tests/android/test_services.cpp" "tests/CMakeFiles/test_android.dir/android/test_services.cpp.o" "gcc" "tests/CMakeFiles/test_android.dir/android/test_services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rattrap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rattrap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
